// Rank-test engine benchmark (BENCH_ranktest.json).
//
// Measures the sparse amortized engine (nullspace/sparse_rank.hpp) against
// the dense-modular tester (nullspace/modular_rank.hpp — the previous
// default, kept as the in-binary reference) on the support populations
// that dominate solver time:
//
//   yeast1_boundary   real candidate supports harvested from the first
//                     iterations of the Network I solve (each candidate
//                     sits at the nullity boundary by the support-union
//                     pretest — the population the solver actually pays
//                     for), replayed iteration by iteration with the
//                     engine's warm cache active; begin_iteration() is
//                     timed as part of every engine pass.  The >= 3x gate.
//   yeast1_cold       the same harvested supports served without the
//                     per-iteration cache — isolates the amortization win
//                     from the sparse-gather win.
//   yeast1_seeded     random supports at |S| in rank-1 .. rank+1 — a
//                     degenerate regime (nullity far above 1, both testers
//                     abort early); informational, not gated.
//   ecoli_boundary    harvested candidates on the E. coli core model — a
//                     denser stoichiometry, regression-gated.
//
// The end-to-end section solves the knockout-yeast instance once per
// backend (sparse vs dense-modular), checks the mode counts are identical,
// and records total + rank-test-phase seconds.
//
// --json PATH writes the machine-readable record; --baseline PATH compares
// per-scenario speedups (in-binary ratios, portable across machines)
// against a previous record and fails (exit 2) on a >10% relative drop;
// --min-speedup X additionally requires yeast1_boundary to clear X — the
// ISSUE 9 acceptance bound.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bitset/dynbitset.hpp"
#include "compress/compression.hpp"
#include "models/ecoli_core.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/modular_rank.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/solver.hpp"
#include "nullspace/sparse_rank.hpp"
#include "nullspace/stats.hpp"
#include "obs/json.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace {

using namespace elmo;

/// One solver iteration's worth of harvested candidate supports plus the
/// common zero rows its warm cache would be built from.
struct IterationSupports {
  std::vector<std::uint32_t> common_rows;
  std::vector<DynBitset> supports;
};

/// A prepared problem, its initial basis (the testers are constructed from
/// it, exactly as in solve_nullspace) and a support population grouped by
/// iteration.  `warm` selects whether engine passes replay
/// begin_iteration() before each group.
struct Fixture {
  EfmProblem<CheckedI64> problem;
  InitialBasis<CheckedI64, DynBitset> basis;
  std::vector<IterationSupports> iterations;
  bool warm = false;

  [[nodiscard]] std::size_t total_tests() const {
    std::size_t n = 0;
    for (const auto& it : iterations) n += it.supports.size();
    return n;
  }
};

/// Random supports at the accept boundary (|S| in rank-1 .. rank+1).
/// Degenerate — nullity is far above 1 almost surely, so both testers
/// abort early — kept as an informational scenario for that regime.
Fixture seeded_fixture(const Network& network, std::uint64_t seed,
                       std::size_t count) {
  Fixture fixture;
  fixture.problem = prepare_problem(
                        to_problem<CheckedI64>(compress(network)))
                        .problem;
  fixture.basis =
      compute_initial_basis<CheckedI64, DynBitset>(fixture.problem);
  Rng rng(seed);
  const std::size_t q = fixture.problem.num_reactions();
  fixture.iterations.emplace_back();
  for (std::size_t c = 0; c < count; ++c) {
    DynBitset support(q);
    const std::size_t size =
        fixture.basis.stoichiometry_rank - 1 + rng.below(3);
    while (support.count() < size) support.set(rng.below(q));
    fixture.iterations.back().supports.push_back(std::move(support));
  }
  return fixture;
}

/// Replays the serial nullspace loop (classify -> generate/test -> merge,
/// the exact candidate stream of solve_nullspace with the rank test) and
/// records every support the elementarity oracle is asked about, grouped
/// by iteration, until `max_tests` have been collected.  The oracle
/// answers through the dense-modular tester so the matrix evolves
/// identically to a real solve.
Fixture harvest_fixture(const Network& network, std::size_t max_tests) {
  Fixture fixture;
  fixture.problem = prepare_problem(
                        to_problem<CheckedI64>(compress(network)))
                        .problem;
  fixture.basis =
      compute_initial_basis<CheckedI64, DynBitset>(fixture.problem);
  fixture.warm = true;
  auto columns = fixture.basis.columns;
  ModularRankTester<CheckedI64> oracle(fixture.problem.stoichiometry,
                                       columns);
  std::size_t collected = 0;
  for (std::size_t row : fixture.basis.processing_order) {
    auto cls = classify_row(columns, row);
    IterationSupports group;
    group.common_rows = iteration_common_zero_rows(
        columns, cls.positive, cls.negative, row);
    auto record = [&](const DynBitset& support) {
      if (collected < max_tests) {
        group.supports.push_back(support);
        ++collected;
      }
      return oracle.is_elementary(support);
    };
    IterationStats iteration;
    PhaseTimer phases;
    std::vector<FluxColumn<CheckedI64, DynBitset>> candidates;
    process_pair_range(columns, row, cls, fixture.basis.stoichiometry_rank,
                       0, cls.pair_count(), std::size_t{1} << 21, record,
                       iteration, phases, candidates);
    columns = merge_next(std::move(columns), cls,
                         fixture.problem.reversible[row],
                         std::move(candidates));
    if (!group.supports.empty()) fixture.iterations.push_back(std::move(group));
    if (collected >= max_tests) break;
  }
  return fixture;
}

struct PathResult {
  double seconds = 1e300;  // best of reps, per full pass over the supports
  std::uint64_t tests = 0;
  std::uint64_t accepts = 0;

  [[nodiscard]] double tests_per_sec() const {
    return static_cast<double>(tests) / seconds;
  }
};

struct ScenarioResult {
  std::string name;
  PathResult engine;
  PathResult reference;
  bool gated = true;

  [[nodiscard]] double speedup() const {
    return reference.seconds / engine.seconds;
  }
};

/// One timed measurement: `inner` passes over the whole support population
/// under one stopwatch, averaged to per-pass seconds.  The engine pass
/// replays begin_iteration() before each warm iteration group — the
/// amortized cache build is part of the measured cost, as in the solver.
template <typename TestPass>
PathResult run_path(const Fixture& fixture, TestPass&& pass, int inner,
                    PathResult best) {
  std::uint64_t accepts = 0;
  Stopwatch watch;
  for (int i = 0; i < inner; ++i) {
    accepts = pass();
  }
  const double seconds = watch.seconds() / inner;
  if (seconds < best.seconds) best.seconds = seconds;
  best.tests = fixture.total_tests();
  best.accepts = accepts;
  return best;
}

ScenarioResult run_scenario(const std::string& name, const Fixture& fixture,
                            int reps) {
  SparseRankTester<CheckedI64> engine(fixture.problem.stoichiometry,
                                      fixture.basis.columns);
  ModularRankTester<CheckedI64> reference(fixture.problem.stoichiometry,
                                          fixture.basis.columns);

  auto engine_pass = [&]() {
    std::uint64_t accepts = 0;
    for (const auto& group : fixture.iterations) {
      if (fixture.warm) engine.begin_iteration(group.common_rows);
      for (const auto& support : group.supports) {
        accepts += engine.is_elementary(support) ? 1 : 0;
      }
    }
    return accepts;
  };
  auto reference_pass = [&]() {
    std::uint64_t accepts = 0;
    for (const auto& group : fixture.iterations) {
      for (const auto& support : group.supports) {
        accepts += reference.is_elementary(support) ? 1 : 0;
      }
    }
    return accepts;
  };

  // Differential check before timing: the engine must return the dense
  // tester's verdict on every support (both compute the same rank mod p).
  for (const auto& group : fixture.iterations) {
    if (fixture.warm) engine.begin_iteration(group.common_rows);
    for (const auto& support : group.supports) {
      if (engine.is_elementary(support) !=
          reference.is_elementary(support)) {
        std::fprintf(stderr, "%s: verdict mismatch\n", name.c_str());
        std::exit(1);
      }
    }
  }

  std::fprintf(stderr,
               "[%s] q=%zu m=%zu k=%zu rank=%zu iters=%zu tests=%zu "
               "sparse=%llu warm=%llu fallback=%llu nnz=%llu\n",
               name.c_str(), fixture.problem.num_reactions(),
               fixture.problem.num_metabolites(),
               fixture.basis.columns.size(),
               fixture.basis.stoichiometry_rank, fixture.iterations.size(),
               fixture.total_tests(),
               static_cast<unsigned long long>(engine.stats().sparse_hits),
               static_cast<unsigned long long>(
                   engine.stats().warmstart_reuses),
               static_cast<unsigned long long>(
                   engine.stats().dense_fallbacks),
               static_cast<unsigned long long>(engine.stats().gathered_nnz));
  engine.reset_stats();

  ScenarioResult result;
  result.name = name;
  const auto size_inner = [&](auto&& pass) {
    Stopwatch watch;
    pass();
    const double once = std::max(watch.seconds(), 1e-7);
    return static_cast<int>(std::clamp(3e-3 / once, 1.0, 500.0));
  };
  const int engine_inner = size_inner(engine_pass);
  const int reference_inner = size_inner(reference_pass);
  // Interleave the paths within each repetition so drift hits both equally.
  for (int rep = 0; rep < reps; ++rep) {
    result.engine =
        run_path(fixture, engine_pass, engine_inner, result.engine);
    result.reference =
        run_path(fixture, reference_pass, reference_inner, result.reference);
  }
  return result;
}

struct EndToEnd {
  double sparse_seconds = 1e300;
  double modular_seconds = 1e300;
  double sparse_ranktest_seconds = 1e300;
  double modular_ranktest_seconds = 1e300;
  std::uint64_t modes = 0;
};

EndToEnd knockout_yeast_end_to_end(int reps) {
  auto problem =
      to_problem<CheckedI64>(compress(bench::network_1(/*full=*/false)));
  EndToEnd out;
  std::uint64_t sparse_modes = 0;
  std::uint64_t modular_modes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (const bool sparse : {true, false}) {
      SolverOptions options;
      options.rank_backend =
          sparse ? RankTestBackend::kSparse : RankTestBackend::kModular;
      Stopwatch watch;
      auto result = solve_efms<CheckedI64, DynBitset>(problem, options);
      const double seconds = watch.seconds();
      const double rank_seconds = result.stats.phases.totals()["rank test"];
      if (sparse) {
        sparse_modes = result.columns.size();
        out.sparse_seconds = std::min(out.sparse_seconds, seconds);
        out.sparse_ranktest_seconds =
            std::min(out.sparse_ranktest_seconds, rank_seconds);
      } else {
        modular_modes = result.columns.size();
        out.modular_seconds = std::min(out.modular_seconds, seconds);
        out.modular_ranktest_seconds =
            std::min(out.modular_ranktest_seconds, rank_seconds);
      }
    }
  }
  if (sparse_modes != modular_modes) {
    std::fprintf(stderr,
                 "knockout-yeast mode counts diverge: sparse %llu vs "
                 "modular %llu\n",
                 static_cast<unsigned long long>(sparse_modes),
                 static_cast<unsigned long long>(modular_modes));
    std::exit(1);
  }
  out.modes = sparse_modes;
  return out;
}

double kilo(double per_sec) { return per_sec / 1e3; }

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;
  std::string json_path;
  std::string baseline_path;
  double max_regression_pct = 10.0;
  double min_speedup = 0.0;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--max-regression-pct") && i + 1 < argc) {
      max_regression_pct = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) reps = 1;
    }
  }
  std::printf("== sparse rank-test engine vs dense-modular reference ==\n\n");

  std::vector<ScenarioResult> scenarios;
  Fixture yeast_harvest = harvest_fixture(models::yeast_network_1(), 4096);
  scenarios.push_back(run_scenario("yeast1_boundary", yeast_harvest, reps));
  yeast_harvest.warm = false;
  scenarios.push_back(run_scenario("yeast1_cold", yeast_harvest, reps));
  scenarios.push_back(run_scenario(
      "yeast1_seeded",
      seeded_fixture(models::yeast_network_1(), 33, 256), reps));
  scenarios.back().gated = false;
  scenarios.push_back(run_scenario(
      "ecoli_boundary", harvest_fixture(models::ecoli_core(), 2048), reps));

  Table table({"scenario", "tests", "accepts", "engine ktests/s",
               "ref ktests/s", "speedup"});
  for (const auto& s : scenarios) {
    char eng[32], ref[32], sp[32];
    std::snprintf(eng, sizeof eng, "%.1f", kilo(s.engine.tests_per_sec()));
    std::snprintf(ref, sizeof ref, "%.1f",
                  kilo(s.reference.tests_per_sec()));
    std::snprintf(sp, sizeof sp, "%.2fx", s.speedup());
    table.add_row({s.name, with_commas(s.engine.tests),
                   with_commas(s.engine.accepts), eng, ref, sp});
  }
  std::fputs(
      table.render("harvested + seeded support populations, best of reps")
          .c_str(),
      stdout);

  const EndToEnd e2e = knockout_yeast_end_to_end(std::min(reps, 3));
  std::printf(
      "\nknockout-yeast solve (%llu modes, identical across backends):\n"
      "  sparse backend   %.2f s total, %.2f s in the rank-test phase\n"
      "  modular backend  %.2f s total, %.2f s in the rank-test phase\n",
      static_cast<unsigned long long>(e2e.modes), e2e.sparse_seconds,
      e2e.sparse_ranktest_seconds, e2e.modular_seconds,
      e2e.modular_ranktest_seconds);

  bool gate_failed = false;

  // Acceptance bound: the boundary-support population on Network I.
  if (min_speedup > 0.0) {
    for (const auto& s : scenarios) {
      if (s.name != "yeast1_boundary") continue;
      const bool ok = s.speedup() >= min_speedup;
      std::printf("\nmin-speedup gate %s: %.2fx (limit %.2fx) -> %s\n",
                  s.name.c_str(), s.speedup(), min_speedup,
                  ok ? "ok" : "FAIL");
      gate_failed = gate_failed || !ok;
    }
  }

  // Regression gate vs a previous record: speedups are in-binary ratios,
  // comparable across machines; raw seconds are not and are informational.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    obs::JsonValue doc = obs::parse_json(text.str(), &error);
    const obs::JsonValue* base_scenarios =
        error.empty() ? doc.find("scenarios") : nullptr;
    if (base_scenarios == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s: %s\n",
                   baseline_path.c_str(),
                   error.empty() ? "missing scenarios" : error.c_str());
      return 1;
    }
    std::printf("\nvs baseline %s (limit -%.1f%%):\n", baseline_path.c_str(),
                max_regression_pct);
    for (const auto& s : scenarios) {
      const obs::JsonValue* node = base_scenarios->find(s.name);
      const obs::JsonValue* speedup_node =
          node != nullptr ? node->find("speedup") : nullptr;
      if (speedup_node == nullptr) {
        std::printf("  %-16s (new scenario, no baseline)\n", s.name.c_str());
        continue;
      }
      const double base = speedup_node->as_double();
      const double delta_pct = (s.speedup() / base - 1.0) * 100.0;
      const bool ok = !s.gated || delta_pct >= -max_regression_pct;
      std::printf("  %-16s %.2fx vs %.2fx (%+.1f%%) -> %s\n", s.name.c_str(),
                  s.speedup(), base, delta_pct,
                  s.gated ? (ok ? "ok" : "FAIL") : "informational");
      gate_failed = gate_failed || !ok;
    }
  }

  if (!json_path.empty()) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("bench", obs::JsonValue("ranktest"));
    doc.set("reps", obs::JsonValue(reps));
    obs::JsonValue scenario_json = obs::JsonValue::object();
    for (const auto& s : scenarios) {
      obs::JsonValue entry = obs::JsonValue::object();
      entry.set("tests", obs::JsonValue(s.engine.tests));
      entry.set("accepts", obs::JsonValue(s.engine.accepts));
      obs::JsonValue engine = obs::JsonValue::object();
      engine.set("seconds", obs::JsonValue(s.engine.seconds));
      engine.set("tests_per_sec", obs::JsonValue(s.engine.tests_per_sec()));
      obs::JsonValue reference = obs::JsonValue::object();
      reference.set("seconds", obs::JsonValue(s.reference.seconds));
      reference.set("tests_per_sec",
                    obs::JsonValue(s.reference.tests_per_sec()));
      entry.set("engine", std::move(engine));
      entry.set("reference", std::move(reference));
      entry.set("speedup", obs::JsonValue(s.speedup()));
      entry.set("gated", obs::JsonValue(s.gated));
      scenario_json.set(s.name, std::move(entry));
    }
    doc.set("scenarios", std::move(scenario_json));
    obs::JsonValue end_to_end = obs::JsonValue::object();
    end_to_end.set("knockout_yeast_modes", obs::JsonValue(e2e.modes));
    end_to_end.set("sparse_seconds", obs::JsonValue(e2e.sparse_seconds));
    end_to_end.set("modular_seconds", obs::JsonValue(e2e.modular_seconds));
    end_to_end.set("sparse_ranktest_seconds",
                   obs::JsonValue(e2e.sparse_ranktest_seconds));
    end_to_end.set("modular_ranktest_seconds",
                   obs::JsonValue(e2e.modular_ranktest_seconds));
    end_to_end.set("ranktest_speedup",
                   obs::JsonValue(e2e.modular_ranktest_seconds /
                                  e2e.sparse_ranktest_seconds));
    doc.set("end_to_end", std::move(end_to_end));
    std::FILE* out = std::fopen(json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string dumped = doc.dump(2);
    std::fwrite(dumped.data(), 1, dumped.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return gate_failed ? 2 : 0;
}
