// elmo's top-level public API.
//
// One call — compute_efms — takes a metabolic Network and returns its full
// set of elementary flux modes in the original reaction space, computed by
// the chosen algorithm of the paper:
//
//   kSerial                 Algorithm 1 (serial Nullspace Algorithm)
//   kCombinatorialParallel  Algorithm 2 (distributed candidate generation
//                           over simulated message-passing ranks)
//   kCombined               Algorithm 3 (divide-and-conquer over a subset
//                           of reversible reactions x Algorithm 2)
//   kPartitioned            Algorithm 4 (matrix-partitioned ranks — the
//                           paper's future-work item #1: no full replica
//                           of the nullspace matrix on any rank)
//
// Arithmetic: the fast overflow-checked int64 kernel runs first; if any
// value exceeds 64 bits the computation transparently restarts with
// arbitrary-precision integers (EfmResult::used_bigint reports this).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "compress/compression.hpp"
#include "core/retry.hpp"
#include "network/network.hpp"
#include "nullspace/initial_basis.hpp"
#include "nullspace/solver.hpp"
#include "nullspace/spill.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "resource/watchdog.hpp"

namespace elmo {

namespace mpsim {
struct FaultPlan;
}  // namespace mpsim

enum class Algorithm {
  kSerial,
  kCombinatorialParallel,
  kCombined,
  kPartitioned,
};

struct EfmOptions {
  Algorithm algorithm = Algorithm::kSerial;

  CompressionOptions compression;
  OrderingOptions ordering;
  ElementarityTest test = ElementarityTest::kRank;
  RankTestBackend rank_backend = RankTestBackend::kSparse;

  /// Simulated compute ranks (Algorithms 2, 3 and 4).
  int num_ranks = 1;
  /// Shared-memory workers per rank (Algorithms 2 and 3) — the Blue Gene
  /// SMP/dual modes and Table II's "cores per node" column.
  int threads_per_rank = 1;

  /// Divide-and-conquer (Algorithm 3): explicit partition reactions by
  /// ORIGINAL network name, or automatic selection of `qsub` trailing
  /// reversible reactions when the list is empty.
  std::vector<std::string> partition_reactions;
  std::size_t qsub = 2;

  /// Per-rank memory budget in bytes (0 = unlimited); exceeded budgets
  /// throw MemoryBudgetError (Algorithm 2) or trigger adaptive re-splits
  /// (Algorithm 3, if max_extra_splits > 0).
  std::size_t memory_budget_per_rank = 0;
  std::size_t max_extra_splits = 0;

  /// Process-wide memory limit in bytes enforced by the MemoryGovernor
  /// (elmo_cli --mem-limit; 0 = ungoverned).  Busting the limit while the
  /// resident charge alone exceeds it throws ResourceError — retryable, so
  /// Algorithm 3 degrades (smaller tiles, spill-always, serial) instead of
  /// dying.  Crossing the half-limit watermark switches candidate
  /// generation out-of-core when `spill.enabled` is set.
  std::size_t mem_limit_bytes = 0;
  /// Out-of-core candidate spill policy (see nullspace/spill.hpp).
  SpillPolicy spill;
  /// Watchdog deadlines per Algorithm-3 subset world (soft = straggler
  /// diagnosis, hard/stall = abort + re-queue-with-split).  Scaled per
  /// subset by the estimate-based cost model when
  /// `scale_deadlines_by_estimate` is set.
  resource::Deadlines subset_deadlines;
  /// Predict each subset's cost (core/estimate.hpp prefix-run estimator)
  /// and scale its deadlines relative to the median subset, so a
  /// legitimately heavy subset is not punished by a budget sized for the
  /// typical one.  Costs one estimator prefix-run per subset upfront.
  bool scale_deadlines_by_estimate = false;

  /// Skip the int64 kernel and compute in BigInt directly.
  bool force_bigint = false;

  /// Per-subset retry behaviour (Algorithm 3).  With bigint_fallback set,
  /// a run that exhausts its attempts under the int64 kernel is redone in
  /// BigInt as a last resort, mirroring the overflow fallback.
  RetryPolicy retry;
  /// Deterministic fault injection for the simulated ranks (Algorithms
  /// 2-4); shared so trigger state persists across worlds and retries.
  std::shared_ptr<mpsim::FaultPlan> fault_plan;
  /// Algorithm 3: append a record per completed subset to this file.
  std::string checkpoint_path;
  /// Algorithm 3: skip subsets already completed in this checkpoint.
  std::string resume_from;

  /// Progress observer, invoked per iteration (from a worker thread for
  /// the parallel algorithms).
  std::function<void(const IterationStats&)> on_iteration;

  /// Subset observer (Algorithm 3), invoked once per committed subset —
  /// computed or resumed — with its label, EFM count, and wall seconds.
  /// Unlike on_iteration it is never throttled downstream, so drivers can
  /// rely on exactly one notification per partition.
  std::function<void(const std::string&, std::size_t, double)> on_subset;

  /// Keep the per-iteration history on the returned stats (the run
  /// report's column-growth curve).  One IterationStats per row processed.
  bool record_history = false;

  /// Runtime invariant auditing (elmo_cli --audit): re-verify S*R = 0 after
  /// every iteration, exact rank-nullity of accepted candidates, support
  /// minimality of the final set, bitwise disjointness + exact coverage of
  /// Algorithm 3's subset patterns, and pair-count conservation across the
  /// simulated ranks.  Opt-in; failures throw check::ContractViolation.
  bool audit = false;
};

/// Per-subset summary of an Algorithm 3 run (one row of Tables III/IV).
struct SubsetSummary {
  std::string label;
  std::size_t num_efms = 0;
  std::uint64_t candidate_pairs = 0;
  double seconds = 0.0;
  double gen_cand_seconds = 0.0;
  double rank_test_seconds = 0.0;
  double communicate_seconds = 0.0;
  double merge_seconds = 0.0;
  std::size_t extra_splits = 0;
  /// Attempts the subset took under the retry policy (1 = clean first try).
  std::size_t attempts = 1;
  /// Simulated exponential backoff charged before the winning attempt.
  double backoff_seconds = 0.0;
  /// True if the subset was recovered from `resume_from`, not recomputed.
  bool resumed = false;
  /// Per-rank traffic + timing breakdown (empty for resumed subsets).
  std::vector<obs::RankEntry> ranks;
};

struct EfmResult {
  /// The elementary flux modes in the ORIGINAL reaction space: primitive
  /// integer vectors, canonically oriented, sorted, duplicate-free.
  std::vector<std::vector<BigInt>> modes;
  /// Row labels of `modes` entries (original reaction order).
  std::vector<std::string> reaction_names;

  SolveStats stats;
  CompressionStats compression_stats;
  std::size_t reduced_reactions = 0;
  std::size_t reduced_metabolites = 0;

  /// Algorithm 3 only: one entry per completed subset.
  std::vector<SubsetSummary> subsets;

  /// Total simulated message traffic (Algorithms 2 and 3).
  std::uint64_t message_bytes = 0;
  /// Largest per-rank memory footprint observed (Algorithms 2 and 3).
  std::size_t peak_rank_memory = 0;

  double seconds = 0.0;
  bool used_bigint = false;

  /// Resource-governance ledger for the run (MemoryGovernor): configured
  /// limit (0 = ungoverned), peak charged bytes, and the out-of-core spill
  /// volume (bytes / blocks written; 0 when nothing spilled).
  std::size_t mem_limit_bytes = 0;
  std::size_t mem_peak_bytes = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_blocks = 0;

  /// Failed subset attempts re-queued by the retry policy (Algorithm 3).
  std::size_t total_retries = 0;
  /// Total simulated backoff those retries were charged, in seconds.
  double simulated_backoff_seconds = 0.0;

  /// Per-rank breakdown of the solve (Algorithms 2 and 4; Algorithm 3
  /// reports ranks per subset instead).
  std::vector<obs::RankEntry> ranks;
  /// Timeline of notable events — retries, re-splits, checkpoints,
  /// resumes (Algorithm 3).
  std::vector<obs::TimelineEvent> events;

  [[nodiscard]] std::size_t num_modes() const { return modes.size(); }
};

/// Compute all elementary flux modes of `network`.
EfmResult compute_efms(const Network& network, const EfmOptions& options = {});

/// Compute EFMs of an already-compressed problem (drivers that reuse one
/// compression across several runs, e.g. the benchmark harness).
EfmResult compute_efms(const CompressedProblem& compressed,
                       const std::vector<bool>& original_reversibility,
                       const EfmOptions& options = {});

/// Human-readable name of an algorithm ("serial", "parallel", "combined",
/// "partitioned").
const char* algorithm_name(Algorithm algorithm);

/// Assemble the machine-readable run report for a finished solve
/// (elmo_cli --report; the totals mirror `result.stats` exactly).
obs::SolveReport make_solve_report(const EfmResult& result,
                                   const EfmOptions& options,
                                   const std::string& network_label);

}  // namespace elmo
