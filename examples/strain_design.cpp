// Strain design on the E. coli core model — the Trinh & Srienc use case
// the paper's introduction cites (refs [5]-[6]): engineer a cell whose
// remaining pathways favour ethanol production.
//
// Work flow, entirely on top of the computed EFM set:
//   1. compute all elementary flux modes,
//   2. yield analysis: ethanol per glucose, per mode,
//   3. find the single/double knockouts that REMOVE low-yield competing
//      modes while keeping the top-yield modes alive,
//   4. report the best designs and the yield spectrum before/after,
//   5. decompose an example measured flux onto the surviving modes.
//
//   $ ./examples/strain_design
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/decompose.hpp"
#include "analysis/knockout.hpp"
#include "analysis/yield.hpp"
#include "core/api.hpp"
#include "models/ecoli_core.hpp"

int main() {
  using namespace elmo;

  Network net = models::ecoli_core();
  auto result = compute_efms(net);
  const ReactionId uptake = net.reaction_id("GLCpts");
  const ReactionId ethanol = net.reaction_id("EXetoh");

  std::printf("E. coli core: %zu EFMs\n", result.num_modes());
  auto yields = mode_yields(result.modes, uptake, ethanol);
  auto best = optimal_yield(result.modes, uptake, ethanol);
  if (!best) {
    std::printf("no glucose-consuming mode produces ethanol\n");
    return 1;
  }
  std::printf("glucose-consuming modes: %zu; best ethanol yield: %s "
              "(mode %zu)\n\n",
              yields.size(), best->yield.to_string().c_str(),
              best->mode_index);

  // Wild-type yield spectrum.
  auto spectrum = yield_histogram(yields, 6);
  std::printf("wild-type yield spectrum (6 bins up to max):");
  for (auto count : spectrum) std::printf(" %zu", count);
  std::printf("\n\n");

  // Score every single knockout: kill competing fermentation while keeping
  // the champion mode alive.
  struct Design {
    std::vector<ReactionId> knockouts;
    double mean_yield = 0;
    std::size_t surviving = 0;
    std::size_t producing = 0;
  };
  auto evaluate = [&](std::vector<ReactionId> ko) -> Design {
    Design d;
    d.knockouts = std::move(ko);
    auto survivors = surviving_modes(result.modes, d.knockouts);
    d.surviving = survivors.size();
    double total = 0;
    for (std::size_t m : survivors) {
      if (result.modes[m][uptake].is_zero()) continue;
      BigRational y(result.modes[m][ethanol].abs(),
                    result.modes[m][uptake].abs());
      total += y.to_double();
      ++d.producing;
    }
    d.mean_yield = d.producing ? total / static_cast<double>(d.producing) : 0;
    return d;
  };

  std::vector<Design> designs;
  for (ReactionId a = 0; a < net.num_reactions(); ++a) {
    if (a == uptake || a == ethanol) continue;
    auto d = evaluate({a});
    if (d.producing > 0) designs.push_back(std::move(d));
  }
  for (ReactionId a = 0; a < net.num_reactions(); ++a) {
    for (ReactionId b = a + 1; b < net.num_reactions(); ++b) {
      if (a == uptake || a == ethanol || b == uptake || b == ethanol)
        continue;
      auto d = evaluate({a, b});
      if (d.producing > 0) designs.push_back(std::move(d));
    }
  }
  std::sort(designs.begin(), designs.end(),
            [](const Design& x, const Design& y) {
              return x.mean_yield > y.mean_yield;
            });

  std::printf("top knockout designs by mean ethanol yield of surviving "
              "glucose modes:\n");
  std::printf("%-24s %12s %12s %12s\n", "knockouts", "mean yield",
              "surviving", "producing");
  for (std::size_t k = 0; k < std::min<std::size_t>(8, designs.size()); ++k) {
    const auto& d = designs[k];
    std::string names;
    for (ReactionId r : d.knockouts) {
      if (!names.empty()) names += '+';
      names += net.reaction(r).name;
    }
    std::printf("%-24s %12.3f %12zu %12zu\n", names.c_str(), d.mean_yield,
                d.surviving, d.producing);
  }

  // Decompose a plausible "measured" flux (the champion mode plus a bit of
  // acetate overflow) onto the wild-type EFM basis.
  std::vector<BigRational> measured(result.modes[0].size());
  for (std::size_t j = 0; j < measured.size(); ++j)
    measured[j] = BigRational(result.modes[best->mode_index][j] * BigInt(3));
  // Mix in another producing mode if one exists.
  if (yields.size() > 1) {
    std::size_t other = yields[0].mode_index == best->mode_index
                            ? yields[1].mode_index
                            : yields[0].mode_index;
    for (std::size_t j = 0; j < measured.size(); ++j)
      measured[j] += BigRational(result.modes[other][j]);
  }
  auto decomposition =
      decompose_flux(measured, result.modes, net.reversibility());
  std::printf("\nflux decomposition of a mixed 'measured' state: %zu terms, "
              "%s\n",
              decomposition.terms.size(),
              decomposition.exact ? "exact" : "residual left");
  for (const auto& term : decomposition.terms)
    std::printf("  %s x mode %zu\n", term.weight.to_string().c_str(),
                term.mode_index);
  return 0;
}
