file(REMOVE_RECURSE
  "CMakeFiles/test_checked.dir/test_checked.cpp.o"
  "CMakeFiles/test_checked.dir/test_checked.cpp.o.d"
  "test_checked"
  "test_checked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
