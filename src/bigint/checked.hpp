// Overflow-checked 64-bit signed integer.
//
// CheckedI64 is the default scalar for the Nullspace Algorithm kernel: flux
// column entries stay small after gcd normalisation, so native arithmetic is
// almost always sufficient — but Bareiss elimination and the biomass-scale
// stoichiometric coefficients in the yeast networks can overflow.  Every
// operation detects overflow (via compiler builtins) and throws
// OverflowError, which the solver catches to retry with BigInt.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <string>

#include "support/error.hpp"

namespace elmo {

class CheckedI64 {
 public:
  constexpr CheckedI64() = default;
  constexpr CheckedI64(std::int64_t v)  // NOLINT(google-explicit-constructor)
      : value_(v) {}

  [[nodiscard]] constexpr std::int64_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0; }
  [[nodiscard]] constexpr int sign() const {
    return value_ == 0 ? 0 : (value_ < 0 ? -1 : 1);
  }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(value_);
  }
  [[nodiscard]] std::string to_string() const {
    return std::to_string(value_);
  }

  CheckedI64& operator+=(CheckedI64 rhs) {
    if (__builtin_add_overflow(value_, rhs.value_, &value_))
      throw OverflowError("CheckedI64: addition overflow");
    return *this;
  }
  CheckedI64& operator-=(CheckedI64 rhs) {
    if (__builtin_sub_overflow(value_, rhs.value_, &value_))
      throw OverflowError("CheckedI64: subtraction overflow");
    return *this;
  }
  CheckedI64& operator*=(CheckedI64 rhs) {
    if (__builtin_mul_overflow(value_, rhs.value_, &value_))
      throw OverflowError("CheckedI64: multiplication overflow");
    return *this;
  }
  CheckedI64& operator/=(CheckedI64 rhs) {
    if (rhs.value_ == 0)
      throw InvalidArgumentError("CheckedI64: division by zero");
    if (value_ == INT64_MIN && rhs.value_ == -1)
      throw OverflowError("CheckedI64: INT64_MIN / -1 overflow");
    value_ /= rhs.value_;
    return *this;
  }
  CheckedI64& operator%=(CheckedI64 rhs) {
    if (rhs.value_ == 0)
      throw InvalidArgumentError("CheckedI64: modulo by zero");
    if (value_ == INT64_MIN && rhs.value_ == -1) {
      value_ = 0;
      return *this;
    }
    value_ %= rhs.value_;
    return *this;
  }

  [[nodiscard]] CheckedI64 operator-() const {
    if (value_ == INT64_MIN)
      throw OverflowError("CheckedI64: negation overflow");
    return CheckedI64(-value_);
  }

  friend CheckedI64 operator+(CheckedI64 a, CheckedI64 b) { return a += b; }
  friend CheckedI64 operator-(CheckedI64 a, CheckedI64 b) { return a -= b; }
  friend CheckedI64 operator*(CheckedI64 a, CheckedI64 b) { return a *= b; }
  friend CheckedI64 operator/(CheckedI64 a, CheckedI64 b) { return a /= b; }
  friend CheckedI64 operator%(CheckedI64 a, CheckedI64 b) { return a %= b; }

  friend constexpr bool operator==(CheckedI64 a, CheckedI64 b) = default;
  friend constexpr std::strong_ordering operator<=>(CheckedI64 a,
                                                    CheckedI64 b) = default;

  static CheckedI64 gcd(CheckedI64 a, CheckedI64 b) {
    // std::gcd over the absolute values; INT64_MIN has no representable
    // absolute value, so guard it explicitly.
    if (a.value_ == INT64_MIN || b.value_ == INT64_MIN)
      throw OverflowError("CheckedI64: gcd overflow");
    std::int64_t x = a.value_ < 0 ? -a.value_ : a.value_;
    std::int64_t y = b.value_ < 0 ? -b.value_ : b.value_;
    return CheckedI64(std::gcd(x, y));
  }

  [[nodiscard]] CheckedI64 abs() const {
    if (value_ == INT64_MIN) throw OverflowError("CheckedI64: abs overflow");
    return CheckedI64(value_ < 0 ? -value_ : value_);
  }

  [[nodiscard]] CheckedI64 exact_div(CheckedI64 divisor) const {
    CheckedI64 result = *this;
    result /= divisor;
    return result;
  }

 private:
  std::int64_t value_ = 0;
};

}  // namespace elmo
