// SIV.B (memory scalability): the combinatorial parallel algorithm
// replicates the whole nullspace matrix on every rank, so its per-rank peak
// is the problem's peak; divide-and-conquer subsets each fit a smaller
// matrix ("fits the larger problem to the available architecture") while
// the CUMULATIVE memory over all subsets stays comparable.
//
// Prints: unsplit per-rank peak; per-subset peaks under qsub = 1..3; the
// max (what a node must fit) and the sum (cumulative) per qsub.  Also
// replays the budgeted recovery path — a per-rank budget derived from the
// qsub=2 peak, with adaptive re-splits and a retry policy — and emits the
// whole run as BENCH_memory.json for dashboards/regression tracking.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "core/combined.hpp"
#include "core/partitioned_parallel.hpp"
#include "nullspace/efm.hpp"
#include "nullspace/problem.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(full,
                            "Figure (SIV.B): per-rank memory, split vs "
                            "unsplit");

  Network network = bench::network_1(full);
  auto compressed = compress(network);

  EfmOptions unsplit;
  unsplit.algorithm = Algorithm::kCombinatorialParallel;
  unsplit.num_ranks = 2;
  auto baseline = compute_efms(compressed, network.reversibility(), unsplit);
  std::printf("Algorithm 2 per-rank peak matrix memory: %s (peak %s "
              "columns)\n\n",
              bytes_str(baseline.peak_rank_memory).c_str(),
              with_commas(baseline.stats.peak_columns).c_str());

  Table table({"qsub", "largest subset peak", "sum over subsets",
               "vs unsplit (largest)", "# EFM"});
  auto problem = to_problem<CheckedI64>(compressed);
  std::ostringstream json;
  json << "{\n  \"benchmark\": \"memory\",\n"
       << "  \"algorithm2_peak_rank_bytes\": " << baseline.peak_rank_memory
       << ",\n  \"qsub_sweep\": [";
  std::size_t qsub2_largest = 0;
  for (std::size_t qsub = 1; qsub <= 3; ++qsub) {
    CombinedOptions combined;
    combined.qsub = qsub;
    combined.num_ranks = 1;
    auto detailed = solve_combined<CheckedI64, DynBitset>(problem, combined);
    std::size_t largest = 0;
    std::size_t sum = 0;
    for (const auto& subset : detailed.subsets) {
      largest = std::max(largest, subset.stats.peak_matrix_bytes);
      sum += subset.stats.peak_matrix_bytes;
    }
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof ratio_text, "%.2fx",
                  static_cast<double>(largest) /
                      static_cast<double>(baseline.peak_rank_memory));
    // Canonical mode count (raw columns can contain one +/- orientation
    // duplicate per fully reversible cycle).
    auto modes = columns_to_bigint(detailed.columns);
    canonicalize_modes(modes, problem.reversible);
    table.add_row({std::to_string(qsub), bytes_str(largest), bytes_str(sum),
                   ratio_text, with_commas(modes.size())});
    if (qsub == 2) qsub2_largest = largest;
    json << (qsub == 1 ? "" : ",") << "\n    {\"qsub\": " << qsub
         << ", \"largest_subset_peak_bytes\": " << largest
         << ", \"sum_subset_peak_bytes\": " << sum
         << ", \"num_efms\": " << modes.size() << "}";
  }
  json << "\n  ],\n";
  std::fputs(table.render("Algorithm 3 subsets").c_str(), stdout);

  // Budgeted recovery: squeeze the per-rank budget below the qsub=2 peak
  // so the oversized subsets must re-split (paper Table IV) and, when the
  // re-split allowance runs out, fall back to the serial final attempt.
  {
    CombinedOptions budgeted;
    budgeted.qsub = 2;
    budgeted.num_ranks = 2;
    budgeted.memory_budget_per_rank = qsub2_largest * 3 / 4;
    budgeted.max_extra_splits = 2;
    budgeted.retry.max_attempts = 2;
    budgeted.retry.serial_final_attempt = true;
    auto recovered =
        solve_combined<CheckedI64, DynBitset>(problem, budgeted);
    std::size_t resplit_subsets = 0;
    std::size_t extra_splits = 0;
    std::size_t retried_subsets = 0;
    std::size_t peak = 0;
    for (const auto& subset : recovered.subsets) {
      if (subset.extra_splits > 0) ++resplit_subsets;
      extra_splits += subset.extra_splits;
      if (subset.attempts > 1) ++retried_subsets;
      peak = std::max(peak, subset.ranks.max_memory_peak());
    }
    std::printf("\nBudgeted recovery (budget %s = 3/4 of qsub=2 peak): "
                "%zu subsets, %zu re-split (%zu extra splits), %zu retried "
                "(%zu attempts re-queued), per-rank peak %s\n",
                bytes_str(budgeted.memory_budget_per_rank).c_str(),
                recovered.subsets.size(), resplit_subsets, extra_splits,
                retried_subsets, recovered.total_retries,
                bytes_str(peak).c_str());
    json << "  \"budgeted_recovery\": {\n"
         << "    \"budget_bytes\": " << budgeted.memory_budget_per_rank
         << ",\n    \"num_subsets\": " << recovered.subsets.size()
         << ",\n    \"resplit_subsets\": " << resplit_subsets
         << ",\n    \"total_extra_splits\": " << extra_splits
         << ",\n    \"retried_subsets\": " << retried_subsets
         << ",\n    \"total_retries\": " << recovered.total_retries
         << ",\n    \"simulated_backoff_seconds\": "
         << recovered.simulated_backoff_seconds
         << ",\n    \"peak_rank_bytes\": " << peak << "\n  },\n";
  }

  // Algorithm 4 — the paper's future-work item #1 implemented: partition
  // the matrix itself across ranks instead of replicating it.
  Table a4({"# ranks", "per-rank peak (shard + positives)", "vs Alg. 2",
            "message bytes"});
  json << "  \"algorithm4\": [";
  bool first_a4 = true;
  for (int ranks : {2, 4, 8}) {
    PartitionedOptions options;
    options.num_ranks = ranks;
    auto result =
        solve_partitioned_parallel<CheckedI64, DynBitset>(problem, options);
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof ratio_text, "%.2fx",
                  static_cast<double>(result.peak_rank_bytes) /
                      static_cast<double>(baseline.peak_rank_memory));
    a4.add_row({std::to_string(ranks), bytes_str(result.peak_rank_bytes),
                ratio_text,
                with_commas(result.ranks.total_bytes_sent())});
    json << (first_a4 ? "" : ",") << "\n    {\"ranks\": " << ranks
         << ", \"peak_rank_bytes\": " << result.peak_rank_bytes
         << ", \"message_bytes\": " << result.ranks.total_bytes_sent()
         << "}";
    first_a4 = false;
  }
  json << "\n  ]\n}\n";
  {
    std::ofstream out("BENCH_memory.json");
    out << json.str();
  }
  std::printf("\nwrote BENCH_memory.json\n");
  std::fputs(
      ("\n" + a4.render("Algorithm 4 (matrix-partitioned, future-work #1)"))
          .c_str(),
      stdout);

  std::printf("\npaper: divide-and-conquer fits each subproblem into node "
              "memory; cumulative requirements stay the same order.\n"
              "Algorithm 4 removes the replica entirely at the cost of "
              "gathering the positive side each iteration.\n");
  return 0;
}
