// The two S. cerevisiae central-metabolism networks evaluated in the paper.
//
//   Network I  (Figs 3-4): 62 internal metabolites, 78 reactions
//                          (reduced by preprocessing to 35 x 55);
//                          1,515,314 elementary flux modes (Tables II/III).
//   Network II (Fig 5):    63 internal metabolites, 83 reactions
//                          (reduced to 40 x 61); 49,764,544 EFMs (Table IV).
//
// Transcription notes:
//   * "mit" compartment suffixes are written with underscores (FAD_mit).
//   * Metabolites with the "ext" suffix are external; BIO (biomass) is also
//     external (nothing consumes it — the biomass reaction R70 is the sink).
//   * Figure 4 prints R94r-R97r with a one-way arrow but lists them among
//     the reversible reactions and names them with the "r" suffix; they are
//     treated as reversible here.
#pragma once

#include "network/network.hpp"

namespace elmo::models {

/// S. cerevisiae Metabolic Network I (62 metabolites x 78 reactions).
Network yeast_network_1();

/// S. cerevisiae Metabolic Network II (63 metabolites x 83 reactions).
Network yeast_network_2();

/// The raw reaction-list text for Network I (parseable by parse_network).
const char* yeast_network_1_text();

/// The raw reaction-list text for Network II.
const char* yeast_network_2_text();

}  // namespace elmo::models
