// Shared helpers for EFM test suites: expansion to the original reaction
// space, canonicalisation, and the invariant battery every EFM set must
// satisfy.
#pragma once

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bigint/bigint.hpp"
#include "compress/compression.hpp"
#include "network/network.hpp"
#include "nullspace/efm.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/rank_test.hpp"

namespace elmo {

/// Expand reduced-space solver columns through the compression record and
/// canonicalise in the original reaction space.
template <typename Scalar, typename Support>
std::vector<std::vector<BigInt>> expand_and_canonicalize(
    const std::vector<FluxColumn<Scalar, Support>>& columns,
    const CompressedProblem& compressed, const Network& network) {
  auto reduced = columns_to_bigint(columns);
  std::vector<std::vector<BigInt>> modes;
  modes.reserve(reduced.size());
  for (const auto& mode : reduced) modes.push_back(compressed.expand(mode));
  canonicalize_modes(modes, network.reversibility());
  return modes;
}

/// The invariant battery:
///   1. every mode is nonzero and satisfies N * e == 0,
///   2. irreversible reactions never carry negative flux,
///   3. entries are primitive integers (gcd == 1),
///   4. supports are pairwise distinct and support-minimal,
///   5. every mode passes the algebraic rank test (nullity == 1) on the
///      original network.
inline void check_efm_invariants(const Network& network,
                                 const std::vector<std::vector<BigInt>>& modes) {
  auto n = network.stoichiometry<BigInt>();
  auto reversible = network.reversibility();
  RankTester<BigInt> tester(n);

  std::set<std::vector<bool>> supports;
  for (const auto& mode : modes) {
    ASSERT_EQ(mode.size(), network.num_reactions());
    // 1. steady state & nonzero.
    bool nonzero = false;
    for (const auto& v : mode) nonzero = nonzero || !v.is_zero();
    EXPECT_TRUE(nonzero);
    for (const auto& residual : n.multiply(mode))
      EXPECT_TRUE(residual.is_zero());
    // 2. irreversibility.
    for (std::size_t j = 0; j < mode.size(); ++j) {
      if (!reversible[j]) {
        EXPECT_GE(mode[j].sign(), 0) << "reaction " << j;
      }
    }
    // 3. primitive.
    BigInt g(0);
    for (const auto& v : mode) g = BigInt::gcd(g, v);
    EXPECT_EQ(g, BigInt(1));
    // 4a. distinct supports.
    std::vector<bool> support(mode.size());
    for (std::size_t j = 0; j < mode.size(); ++j)
      support[j] = !mode[j].is_zero();
    EXPECT_TRUE(supports.insert(support).second)
        << "duplicate support in EFM set";
    // 5. rank test on the original network.
    DynBitset bits(mode.size());
    for (std::size_t j = 0; j < mode.size(); ++j)
      if (!mode[j].is_zero()) bits.set(j);
    EXPECT_TRUE(tester.is_elementary(bits));
  }

  // 4b. support minimality across the set.
  std::vector<std::vector<bool>> all(supports.begin(), supports.end());
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = 0; b < all.size(); ++b) {
      if (a == b) continue;
      bool subset = true;
      bool strict = false;
      for (std::size_t j = 0; j < all[a].size(); ++j) {
        if (all[a][j] && !all[b][j]) subset = false;
        if (!all[a][j] && all[b][j]) strict = true;
      }
      EXPECT_FALSE(subset && strict)
          << "support " << a << " strictly inside support " << b;
    }
  }
}

}  // namespace elmo
