// Fixed-width text table renderer used by the benchmark harness to print
// paper-style tables (Tables II-IV).
#pragma once

#include <string>
#include <vector>

namespace elmo {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column-aligned padding, a header separator, and an
  /// optional caption line above.
  [[nodiscard]] std::string render(const std::string& caption = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace elmo
