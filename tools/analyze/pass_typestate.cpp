// elmo_analyze — typestate pass: declarative object-protocol machines.
//
// The resource objects the governor/spill/watchdog substrate hands out are
// driven through small state machines the type system cannot express:
//
//   SpillFile         open → write* → read* → close: once for_each_block
//                     starts streaming the file back, append_block is a
//                     protocol break (rule spill-write-after-read)
//   MemoryLease       acquire → charge* → release: set()/charged() after
//                     release() on ANY path is use-after-release — a branch
//                     that releases early and then merges counts
//   Watchdog          arm() returns a Token whose destructor disarms; a
//                     discarded result disarms immediately and the span
//                     runs unsupervised (rule discarded-token)
//   checkpoint        repair-before-resume: load_checkpoint for a resume
//                     without repair_checkpoint first leaves the read
//                     stopping silently at a damaged tail
//   SparseRankTester  begin_iteration must precede the warm elementarity
//                     tests of each iteration; the next begin_iteration
//                     invalidates the cached pivots
//                     (rule warm-test-before-begin)
//
// Checking model: per function, tracked locals (declared by type name,
// `auto x = ...Type...` bindings, containers of the type, and range-for
// aliases over tracked containers) carry a SET of possible states.
// Branches fork the set and merge at the join (NFA-style: a path that
// skips a release/begin on an error edge survives into the merged set);
// `return`/`throw`/`break` kill their path; loop bodies run twice so
// cross-iteration breaks (append after a read in the previous trip)
// surface.  One level of interprocedural propagation: passing a tracked
// object to a resolvable function applies that callee's event calls in
// order.  Lambda bodies are DEFERRED, not inline: they evaluate against
// the enclosing function's final states, matching how solver drivers
// prepare an iteration before the per-candidate lambda runs.
//
// Escapes: lint:allow(<rule>) on the offending or preceding raw line.

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analyze/analyzer.hpp"
#include "analyze/callgraph.hpp"

namespace elmo_analyze {

namespace {

constexpr std::size_t npos = CallGraph::npos;

// One event of a machine: a state set it must not fire from (bad_mask),
// the state every survivor collapses to (0 = unchanged), and the rule the
// bad states trip.  `must` narrows a rule to definite violations: it fires
// only when EVERY possible state is bad — used where the repo correlates
// staging and use through a boolean flag the branch-merge cannot see
// (begin_iteration and is_elementary both under `if (use_sparse)`).
struct EventDef {
  const char* name;
  unsigned bad_mask;
  bool must;
  unsigned result_state;
  const char* rule;
  const char* complaint;
};

struct MachineDef {
  const char* type_ident;  // declaration type name that starts tracking
  const char* pretty;
  unsigned initial_mask;
  std::vector<EventDef> events;

  [[nodiscard]] const EventDef* event(const std::string& name) const {
    for (const EventDef& e : events) {
      if (name == e.name) return &e;
    }
    return nullptr;
  }
};

// State bits are machine-local; bit 1 is always the freshly-constructed
// state.
constexpr unsigned kFresh = 1;     // SpillFile: no block written yet
constexpr unsigned kWriting = 2;   // SpillFile: append_block happened
constexpr unsigned kReading = 4;   // SpillFile: for_each_block happened
constexpr unsigned kActive = 1;    // MemoryLease: holds its charge
constexpr unsigned kReleased = 2;  // MemoryLease: released
constexpr unsigned kNoIter = 1;    // SparseRankTester: no iteration staged
constexpr unsigned kIter = 2;      // SparseRankTester: begin_iteration ran

const std::vector<MachineDef>& machines() {
  static const std::vector<MachineDef> kMachines = {
      {"SpillFile",
       "SpillFile",
       kFresh,
       {
           {"append_block", kReading, false, kWriting,
            "spill-write-after-read",
            "appends a block after for_each_block started streaming the "
            "spill file back — the protocol is open, write*, read*, close; "
            "stage every block before reading"},
           {"for_each_block", 0, false, kReading, nullptr, nullptr},
       }},
      {"MemoryLease",
       "MemoryLease",
       kActive,
       {
           {"set", kReleased, false, kActive, "use-after-release",
            "charges the lease on a path where release() already ran — an "
            "early-release branch merges back into this use"},
           {"charged", kReleased, false, 0, "use-after-release",
            "reads the lease on a path where release() already ran — an "
            "early-release branch merges back into this use"},
           {"release", 0, false, kReleased, nullptr, nullptr},
       }},
      {"SparseRankTester",
       "SparseRankTester",
       kNoIter,
       {
           {"begin_iteration", 0, false, kIter, nullptr, nullptr},
           {"is_elementary", kNoIter, true, 0, "warm-test-before-begin",
            "runs a warm elementarity test on a path with no "
            "begin_iteration for the current iteration — stale cached "
            "pivots from the previous iteration would be reused"},
       }},
  };
  return kMachines;
}

std::size_t machine_for_type(const std::string& type_ident) {
  const auto& defs = machines();
  for (std::size_t i = 0; i < defs.size(); ++i) {
    if (type_ident == defs[i].type_ident) return i;
  }
  return npos;
}

struct VarState {
  std::size_t machine = npos;
  unsigned mask = 0;
};

struct Env {
  std::map<std::string, VarState> vars;
  bool dead = false;
};

Env merge(const Env& a, const Env& b) {
  if (a.dead) return b;
  if (b.dead) return a;
  Env out = a;
  for (const auto& [name, st] : b.vars) {
    auto it = out.vars.find(name);
    if (it == out.vars.end()) {
      out.vars.emplace(name, st);
    } else {
      it->second.mask |= st.mask;
    }
  }
  return out;
}

struct TypestatePass {
  const Project& project;
  const Options& opts;
  std::vector<Finding>& findings;
  CallGraph cg;
  std::set<std::string> emitted;  // rule:file:line:var

  // Per-function evaluation context (rebuilt for every top-level fn).
  struct FnCtx {
    std::size_t fn = npos;
    const std::vector<Token>* toks = nullptr;
    std::vector<std::pair<std::size_t, std::size_t>> child_ranges;
    std::map<std::string, std::string> aliases;  // range-for name -> var
  };

  void run();
  void process_fn(std::size_t fn_idx, Env env);
  void discover_vars(FnCtx& ctx, Env& env);
  std::size_t skip_child(const FnCtx& ctx, std::size_t i) const;
  std::size_t eval_range(const FnCtx& ctx, std::size_t b, std::size_t e,
                         Env& env);
  std::size_t eval_if(const FnCtx& ctx, std::size_t i, std::size_t e,
                      Env& env);
  std::size_t eval_loop(const FnCtx& ctx, std::size_t i, std::size_t e,
                        Env& env);
  std::size_t statement_end(const FnCtx& ctx, std::size_t b,
                            std::size_t e) const;
  void apply_event(const FnCtx& ctx, Env& env, const std::string& var,
                   const std::string& event, std::size_t line);
  void propagate_call(const FnCtx& ctx, Env& env, const CallRef* call,
                      std::size_t open, std::size_t close);
  std::string receiver_at(const FnCtx& ctx, std::size_t dot) const;
  void check_discarded_tokens();
  void check_checkpoint_repair();
  void violation(const std::string& rule, std::size_t file, std::size_t line,
                 const std::string& message);
};

void TypestatePass::violation(const std::string& rule, std::size_t file,
                              std::size_t line, const std::string& message) {
  const SourceFile& f = project.files[file];
  if (f.allows(line, rule)) return;
  std::ostringstream key;
  key << rule << ":" << file << ":" << line;
  if (!emitted.insert(key.str()).second) return;
  Finding finding;
  finding.pass = "typestate";
  finding.rule = rule;
  finding.file = f.path;
  finding.line = line;
  finding.message = message;
  findings.push_back(std::move(finding));
}

void TypestatePass::apply_event(const FnCtx& ctx, Env& env,
                                const std::string& var,
                                const std::string& event, std::size_t line) {
  auto it = env.vars.find(var);
  if (it == env.vars.end()) return;
  VarState& st = it->second;
  if (event == "emplace") {  // (re)construction inside optional/container
    st.mask = machines()[st.machine].initial_mask;
    return;
  }
  const MachineDef& def = machines()[st.machine];
  const EventDef* ev = def.event(event);
  if (ev == nullptr) return;
  const bool bad =
      (st.mask & ev->bad_mask) != 0 &&
      (!ev->must || (st.mask & ~ev->bad_mask) == 0);
  if (bad && ev->rule != nullptr) {
    violation(ev->rule, cg.fns[ctx.fn].file, line,
              std::string("'") + var + "' (" + def.pretty + ") " +
                  ev->complaint);
    st.mask &= ~ev->bad_mask;  // recover: report each break once
    if (st.mask == 0) st.mask = def.initial_mask;
  }
  if (ev->result_state != 0) st.mask = ev->result_state;
}

/// The identifier owning the member access whose `.`/`->` sits at `dot`:
/// `spill.append_block` -> spill, `testers[i].is_elementary` -> testers,
/// `foo().bar` -> "" (chained call results are not tracked variables).
std::string TypestatePass::receiver_at(const FnCtx& ctx,
                                       std::size_t dot) const {
  const std::vector<Token>& toks = *ctx.toks;
  if (dot == 0) return "";
  std::size_t i = dot - 1;
  if (toks[i].is("]")) {
    const std::size_t open = match_backward(toks, i);
    if (open == npos || open == 0) return "";
    i = open - 1;
  }
  if (!toks[i].ident()) return "";
  std::string name = toks[i].text;
  auto alias = ctx.aliases.find(name);
  return alias == ctx.aliases.end() ? name : alias->second;
}

std::size_t TypestatePass::skip_child(const FnCtx& ctx, std::size_t i) const {
  for (const auto& [b, e] : ctx.child_ranges) {
    if (i == b) return e + 1;
  }
  return i;
}

/// First token index past the statement starting at `b`: the `;` at
/// bracket depth 0, bounded by `e`.
std::size_t TypestatePass::statement_end(const FnCtx& ctx, std::size_t b,
                                         std::size_t e) const {
  const std::vector<Token>& toks = *ctx.toks;
  int depth = 0;
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].is("(") || toks[i].is("[") || toks[i].is("{")) ++depth;
    if (toks[i].is(")") || toks[i].is("]") || toks[i].is("}")) --depth;
    if (toks[i].is(";") && depth <= 0) return i;
  }
  return e;
}

std::size_t TypestatePass::eval_if(const FnCtx& ctx, std::size_t i,
                                   std::size_t e, Env& env) {
  const std::vector<Token>& toks = *ctx.toks;
  if (i + 1 >= e || !toks[i + 1].is("(")) return i + 1;
  const std::size_t close = match_forward(toks, i + 1);
  if (close == npos || close >= e) return i + 1;
  // Condition events (lease.charged() in the test) run on every path.
  eval_range(ctx, i + 2, close, env);
  std::size_t then_b;
  std::size_t then_e;
  std::size_t after;
  if (close + 1 < e && toks[close + 1].is("{")) {
    const std::size_t body_close = match_forward(toks, close + 1);
    if (body_close == npos || body_close > e) return close + 1;
    then_b = close + 2;
    then_e = body_close;
    after = body_close + 1;
  } else {
    then_b = close + 1;
    then_e = statement_end(ctx, then_b, e);
    after = then_e + 1;
  }
  Env then_env = env;
  eval_range(ctx, then_b, then_e, then_env);
  if (after < e && toks[after].ident() && toks[after].text == "else") {
    Env else_env = env;
    std::size_t after_else;
    if (after + 1 < e && toks[after + 1].ident() &&
        toks[after + 1].text == "if") {
      after_else = eval_if(ctx, after + 1, e, else_env);
    } else if (after + 1 < e && toks[after + 1].is("{")) {
      const std::size_t body_close = match_forward(toks, after + 1);
      if (body_close == npos || body_close > e) return after + 1;
      eval_range(ctx, after + 2, body_close, else_env);
      after_else = body_close + 1;
    } else {
      const std::size_t end = statement_end(ctx, after + 1, e);
      eval_range(ctx, after + 1, end, else_env);
      after_else = end + 1;
    }
    env = merge(then_env, else_env);
    return after_else;
  }
  env = merge(then_env, env);
  return after;
}

std::size_t TypestatePass::eval_loop(const FnCtx& ctx, std::size_t i,
                                     std::size_t e, Env& env) {
  const std::vector<Token>& toks = *ctx.toks;
  if (i + 1 >= e || !toks[i + 1].is("(")) return i + 1;
  const std::size_t close = match_forward(toks, i + 1);
  if (close == npos || close >= e) return i + 1;
  eval_range(ctx, i + 2, close, env);
  std::size_t body_b;
  std::size_t body_e;
  std::size_t after;
  if (close + 1 < e && toks[close + 1].is("{")) {
    const std::size_t body_close = match_forward(toks, close + 1);
    if (body_close == npos || body_close > e) return close + 1;
    body_b = close + 2;
    body_e = body_close;
    after = body_close + 1;
  } else {
    body_b = close + 1;
    body_e = statement_end(ctx, body_b, e);
    after = body_e + 1;
  }
  // Two trips: the second starts from entry ∪ one-trip so breaks that only
  // manifest across iterations (append after last trip's read) surface.
  Env once = env;
  eval_range(ctx, body_b, body_e, once);
  Env merged = merge(env, once);
  Env twice = merged;
  eval_range(ctx, body_b, body_e, twice);
  env = merge(merged, twice);
  env.dead = false;  // a break/return inside the body: zero-trip path lives
  return after;
}

std::size_t TypestatePass::eval_range(const FnCtx& ctx, std::size_t b,
                                      std::size_t e, Env& env) {
  const std::vector<Token>& toks = *ctx.toks;
  std::size_t i = b;
  while (i < e && !env.dead) {
    const std::size_t skipped = skip_child(ctx, i);
    if (skipped != i) {
      i = skipped;
      continue;
    }
    const Token& t = toks[i];
    if (t.ident()) {
      if (t.text == "if") {
        i = eval_if(ctx, i, e, env);
        continue;
      }
      if (t.text == "for" || t.text == "while") {
        i = eval_loop(ctx, i, e, env);
        continue;
      }
      if (t.text == "catch") {
        // A catch block is a fork off the try body, not part of the
        // fall-through path: a rethrow inside it must not kill the
        // normal-exit walk.  (The try body itself is walked linearly —
        // conservatively, as if it completed.)
        std::size_t j = i + 1;
        if (j < e && toks[j].is("(")) {
          const std::size_t close = match_forward(toks, j);
          if (close != npos && close + 1 < e && toks[close + 1].is("{")) {
            const std::size_t body_close = match_forward(toks, close + 1);
            if (body_close != npos && body_close <= e) {
              Env handler = env;
              eval_range(ctx, close + 2, body_close, handler);
              env = merge(env, handler);
              i = body_close + 1;
              continue;
            }
          }
        }
      }
      if (t.text == "return" || t.text == "throw" || t.text == "break" ||
          t.text == "continue") {
        // Apply events inside the return expression first, then die.
        const std::size_t end = statement_end(ctx, i + 1, e);
        Env tail = env;
        tail.dead = false;
        eval_range(ctx, i + 1, end, tail);
        env = tail;
        env.dead = true;
        break;
      }
      const bool member_call = i > 0 &&
                               (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
                               i + 1 < e && toks[i + 1].is("(");
      if (member_call) {
        const std::string recv = receiver_at(ctx, i - 1);
        if (!recv.empty()) apply_event(ctx, env, recv, t.text, t.line);
        ++i;
        continue;
      }
      // One-level propagation: helper(tracked_var, ...) applies the
      // callee's event calls, in callee token order, to the passed var.
      const bool free_call = i + 1 < e && toks[i + 1].is("(") &&
                             (i == 0 || (!toks[i - 1].is(".") &&
                                         !toks[i - 1].is("->")));
      if (free_call) {
        const std::size_t close = match_forward(toks, i + 1);
        if (close != npos && close <= e) {
          propagate_call(ctx, env, nullptr, i, close);
        }
      }
    }
    ++i;
  }
  return e;
}

void TypestatePass::propagate_call(const FnCtx& ctx, Env& env,
                                   const CallRef* /*call*/, std::size_t open,
                                   std::size_t close) {
  const std::vector<Token>& toks = *ctx.toks;
  const std::string& callee = toks[open].text;
  // Gather tracked variables appearing at the call's top argument level.
  std::vector<std::string> passed;
  int depth = 0;
  for (std::size_t i = open + 2; i < close; ++i) {
    if (toks[i].is("(") || toks[i].is("[") || toks[i].is("{")) ++depth;
    if (toks[i].is(")") || toks[i].is("]") || toks[i].is("}")) --depth;
    if (depth == 0 && toks[i].ident() && env.vars.count(toks[i].text) != 0) {
      passed.push_back(toks[i].text);
    }
  }
  if (passed.empty()) return;
  const std::vector<std::size_t> targets = cg.resolve(callee);
  if (targets.size() != 1) return;  // ambiguous: stay silent
  const FnDef& target = cg.fns[targets[0]];
  if (target.is_lambda || target.body_end <= target.body_begin) return;
  const std::vector<Token>& callee_toks = cg.file_tokens[target.file];
  for (std::size_t i = target.body_begin + 1; i < target.body_end; ++i) {
    if (!callee_toks[i].ident()) continue;
    if (i == 0 ||
        (!callee_toks[i - 1].is(".") && !callee_toks[i - 1].is("->"))) {
      continue;
    }
    if (i + 1 >= target.body_end || !callee_toks[i + 1].is("(")) continue;
    // The event is attributed to the caller's line: that is where the
    // object was handed off on the offending path.
    for (const std::string& var : passed) {
      apply_event(ctx, env, var, callee_toks[i].text, toks[open].line);
    }
  }
}

void TypestatePass::discover_vars(FnCtx& ctx, Env& env) {
  const FnDef& f = cg.fns[ctx.fn];
  const std::vector<Token>& toks = *ctx.toks;
  for (std::size_t i = f.body_begin + 1; i < f.body_end; ++i) {
    const std::size_t skipped = skip_child(ctx, i);
    if (skipped != i) {
      i = skipped - 1;
      continue;
    }
    const Token& t = toks[i];
    if (!t.ident()) continue;
    const std::size_t machine = machine_for_type(t.text);
    if (machine == npos) continue;
    if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"))) continue;
    // Skip template arguments / reference markers after the type name.
    std::size_t j = i + 1;
    if (j < f.body_end && toks[j].is("<")) {
      int angle = 1;
      ++j;
      while (j < f.body_end && angle > 0) {
        if (toks[j].is("<")) ++angle;
        if (toks[j].is(">")) --angle;
        if (toks[j].is(">>")) angle -= 2;
        ++j;
      }
    }
    while (j < f.body_end &&
           (toks[j].is("&") || toks[j].is("*") || toks[j].is(">"))) {
      ++j;
    }
    std::string var;
    if (j + 1 < f.body_end && toks[j].ident() &&
        (toks[j + 1].is("(") || toks[j + 1].is("{") || toks[j + 1].is(";") ||
         toks[j + 1].is("=") || toks[j + 1].is(","))) {
      var = toks[j].text;
    } else {
      // `auto x = make_...<Type>(...)` binding: the statement head names
      // the variable.
      std::size_t s = i;
      while (s > f.body_begin + 1 && !toks[s - 1].is(";") &&
             !toks[s - 1].is("{") && !toks[s - 1].is("}")) {
        --s;
      }
      if (s + 2 < f.body_end && toks[s].ident() && toks[s].text == "auto" &&
          toks[s + 1].ident() && toks[s + 2].is("=")) {
        var = toks[s + 1].text;
      }
    }
    if (var.empty()) continue;
    VarState st;
    st.machine = machine;
    st.mask = machines()[machine].initial_mask;
    env.vars.emplace(var, st);
  }
  // Range-for aliases over tracked containers:
  // `for (auto& tester : sparse_testers)` drives the container's machine.
  for (std::size_t i = f.body_begin + 1; i + 1 < f.body_end; ++i) {
    if (!toks[i].ident() || toks[i].text != "for" || !toks[i + 1].is("(")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1);
    if (close == npos || close >= f.body_end) continue;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (!toks[k].is(":")) continue;
      if (k + 2 != close || !toks[k + 1].ident()) break;  // complex range
      if (k == i + 2 || !toks[k - 1].ident()) break;
      if (env.vars.count(toks[k + 1].text) != 0) {
        ctx.aliases.emplace(toks[k - 1].text, toks[k + 1].text);
      }
      break;
    }
  }
}

void TypestatePass::process_fn(std::size_t fn_idx, Env env) {
  const FnDef& f = cg.fns[fn_idx];
  if (f.body_end <= f.body_begin) return;
  FnCtx ctx;
  ctx.fn = fn_idx;
  ctx.toks = &cg.file_tokens[f.file];
  for (std::size_t i = 0; i < cg.fns.size(); ++i) {
    const FnDef& child = cg.fns[i];
    if (child.parent == fn_idx && child.is_lambda &&
        child.body_end > child.body_begin) {
      ctx.child_ranges.emplace_back(child.body_begin, child.body_end);
    }
  }
  std::sort(ctx.child_ranges.begin(), ctx.child_ranges.end());
  discover_vars(ctx, env);
  env.dead = false;
  eval_range(ctx, f.body_begin + 1, f.body_end, env);
  // Deferred lambda bodies: evaluate each against this function's final
  // states (the drivers stage an iteration, then the candidate lambda
  // runs), inheriting the tracked variables it captures.
  for (std::size_t i = 0; i < cg.fns.size(); ++i) {
    const FnDef& child = cg.fns[i];
    if (child.parent == fn_idx && child.is_lambda) {
      Env child_env = env;
      child_env.dead = false;
      process_fn(i, child_env);
    }
  }
}

void TypestatePass::run() {
  for (std::size_t i = 0; i < cg.fns.size(); ++i) {
    if (!cg.fns[i].is_lambda) process_fn(i, Env{});
  }
  check_discarded_tokens();
  check_checkpoint_repair();
}

void TypestatePass::check_discarded_tokens() {
  for (const CallRef& call : cg.calls) {
    if (!call.member || call.callee != "arm" || call.caller == npos) continue;
    const std::vector<Token>& toks = cg.file_tokens[call.file];
    // Walk the receiver chain back to the expression's first token,
    // collecting the identifiers: only Watchdog arms are typestated.
    bool watchdoggy = false;
    std::size_t cur = call.tok;
    for (int steps = 0; steps < 24 && cur >= 2; ++steps) {
      if (!toks[cur - 1].is(".") && !toks[cur - 1].is("->") &&
          !toks[cur - 1].is("::")) {
        break;
      }
      std::size_t prev = cur - 2;
      if (toks[prev].is(")")) {
        const std::size_t open = match_backward(toks, prev);
        if (open == npos || open == 0) break;
        prev = open - 1;
      }
      if (!toks[prev].ident()) break;
      std::string lowered = toks[prev].text;
      for (char& c : lowered) c = static_cast<char>(std::tolower(
          static_cast<unsigned char>(c)));
      if (lowered.find("watchdog") != std::string::npos) watchdoggy = true;
      cur = prev;
    }
    if (!watchdoggy) continue;
    const bool discarded =
        cur == 0 || toks[cur - 1].is(";") || toks[cur - 1].is("{") ||
        toks[cur - 1].is("}");
    if (!discarded) continue;
    violation("discarded-token", call.file, call.line,
              "Watchdog::arm result discarded — the returned Token disarms "
              "in its own destructor before the supervised work starts; "
              "bind it for the span being watched");
  }
}

void TypestatePass::check_checkpoint_repair() {
  for (const CallRef& call : cg.calls) {
    if (call.callee != "load_checkpoint" || call.caller == npos) continue;
    bool repaired = false;
    for (const CallRef& other : cg.calls) {
      if (other.caller != call.caller || other.tok >= call.tok ||
          other.file != call.file) {
        continue;
      }
      if (other.callee == "repair_checkpoint") {
        repaired = true;
        break;
      }
      // One level deep: a helper called earlier that repairs counts.
      for (std::size_t idx : cg.resolve(other.callee)) {
        for (const CallRef& inner : cg.calls) {
          if (inner.caller == idx && inner.callee == "repair_checkpoint") {
            repaired = true;
            break;
          }
        }
        if (repaired) break;
      }
      if (repaired) break;
    }
    if (repaired) continue;
    violation("repair-before-resume", call.file, call.line,
              "checkpoint loaded for resume without repair_checkpoint on "
              "the path first — a damaged tail makes the load stop "
              "silently early; trim the file back to its last intact "
              "frame before reading it");
  }
}

}  // namespace

void pass_typestate(const Project& project, const Options& opts,
                    std::vector<Finding>& findings) {
  TypestatePass pass{project, opts, findings, build_callgraph(project), {}};
  pass.run();
}

}  // namespace elmo_analyze
