// Tests for the thread pool and pair-space partitioner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/thread_pool.hpp"
#include "support/error.hpp"

namespace elmo {
namespace {

TEST(Partitioner, CoversRangeExactlyOnce) {
  for (std::uint64_t total : {0ULL, 1ULL, 7ULL, 64ULL, 1000ULL}) {
    for (int workers : {1, 2, 3, 7, 16}) {
      std::uint64_t covered = 0;
      std::uint64_t previous_end = 0;
      for (int w = 0; w < workers; ++w) {
        PairRange range = pair_slice(total, w, workers);
        EXPECT_EQ(range.begin, previous_end);
        previous_end = range.end;
        covered += range.count();
      }
      EXPECT_EQ(previous_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(Partitioner, BalancedWithinOne) {
  for (int workers : {2, 3, 5, 8}) {
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (int w = 0; w < workers; ++w) {
      auto count = pair_slice(1003, w, workers).count();
      lo = std::min(lo, count);
      hi = std::max(hi, count);
    }
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(Partitioner, RejectsBadArguments) {
  EXPECT_THROW(pair_slice(10, 0, 0), InvalidArgumentError);
  EXPECT_THROW(pair_slice(10, 3, 3), InvalidArgumentError);
  EXPECT_THROW(pair_slice(10, -1, 3), InvalidArgumentError);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 20; ++i)
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 210);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw InvalidArgumentError("boom"); });
  EXPECT_THROW(future.get(), InvalidArgumentError);
}

TEST(ParallelFor, SumsRange) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  parallel_for_chunks(pool, 1000, [&](std::uint64_t begin, std::uint64_t end) {
    std::uint64_t local = 0;
    for (std::uint64_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for_chunks(pool, 0, [](std::uint64_t, std::uint64_t) {
    FAIL() << "body must not run";
  });
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_chunks(pool, 100,
                          [](std::uint64_t begin, std::uint64_t) {
                            if (begin == 0)
                              throw InvalidArgumentError("chunk failed");
                          }),
      InvalidArgumentError);
}

}  // namespace
}  // namespace elmo
