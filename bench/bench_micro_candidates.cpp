// Microbenchmark: the candidate-generation inner loop.
//
// The pre-test (union popcount against the rank bound) runs once per
// positive x negative pair — 159.6e9 times on the paper's Network I run —
// so its per-pair cost decides the "gen cand" rows of Tables II/III.
// Measures Bitset64 (<= 64 reactions) vs DynBitset (two words, the yeast
// reduction's size) pair probing, and full candidate-ref generation.
#include <benchmark/benchmark.h>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "compress/compression.hpp"
#include "models/yeast.hpp"
#include "nullspace/initial_basis.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/solver.hpp"
#include "support/random.hpp"

namespace {

using namespace elmo;

template <typename Support>
std::vector<FluxColumn<CheckedI64, Support>> synthetic_columns(
    std::size_t count, std::size_t q, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FluxColumn<CheckedI64, Support>> columns;
  columns.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    std::vector<CheckedI64> values(q, CheckedI64(0));
    std::size_t nnz = 8 + rng.below(12);
    for (std::size_t k = 0; k < nnz; ++k)
      values[rng.below(q)] = CheckedI64(rng.range(-3, 3));
    // Ensure a nonzero somewhere so from_values has a support.
    values[rng.below(q)] = CheckedI64(1);
    columns.push_back(
        FluxColumn<CheckedI64, Support>::from_values(std::move(values)));
  }
  return columns;
}

// `reference` selects the pre-engine scalar row-major loop
// (generate_candidate_refs_reference) so the engine's gain stays measurable
// in-tree; the default runs the tiled/pruned/SIMD engine (pairgen.hpp).
template <typename Support>
void pair_probe_benchmark(benchmark::State& state, std::size_t q,
                          std::size_t rank, bool reference = false) {
  auto columns = synthetic_columns<Support>(2048, q, 5);
  // Pick a processing row most columns touch with both signs.
  std::size_t row = 0;
  RowClassification cls;
  for (std::size_t r = 0; r < q; ++r) {
    auto c = classify_row(columns, r);
    if (c.pair_count() > cls.pair_count()) {
      cls = std::move(c);
      row = r;
    }
  }
  for (auto _ : state) {
    IterationStats stats;
    std::vector<CandidateRef<Support>> refs;
    std::uint64_t cursor = 0;
    if (reference) {
      generate_candidate_refs_reference(columns, row, cls, &cursor,
                                        cls.pair_count(), rank, SIZE_MAX,
                                        refs, stats);
    } else {
      generate_candidate_refs(columns, row, cls, &cursor, cls.pair_count(),
                              rank, SIZE_MAX, refs, stats);
    }
    state.counters["pairs/s"] = benchmark::Counter(
        static_cast<double>(stats.pairs_probed),
        benchmark::Counter::kIsIterationInvariantRate);
    benchmark::DoNotOptimize(refs);
  }
}

// rank = 35 makes most pairs pass the pre-test (survivor-dominated,
// measures full candidate generation); rank = 8 makes nearly all pairs
// fail (measures the pure probe loop — what 159.6e9 pairs cost).
void BM_PairProbe_Bitset64(benchmark::State& state) {
  pair_probe_benchmark<Bitset64>(state, 60, 35);
}
BENCHMARK(BM_PairProbe_Bitset64);

void BM_PairProbe_Bitset64_RejectPath(benchmark::State& state) {
  pair_probe_benchmark<Bitset64>(state, 60, 8);
}
BENCHMARK(BM_PairProbe_Bitset64_RejectPath);

void BM_PairProbe_DynBitset2Words(benchmark::State& state) {
  pair_probe_benchmark<DynBitset>(state, 66, 35);  // the yeast size
}
BENCHMARK(BM_PairProbe_DynBitset2Words);

void BM_PairProbe_DynBitset2Words_RejectPath(benchmark::State& state) {
  pair_probe_benchmark<DynBitset>(state, 66, 8);
}
BENCHMARK(BM_PairProbe_DynBitset2Words_RejectPath);

void BM_PairProbe_DynBitset8Words(benchmark::State& state) {
  pair_probe_benchmark<DynBitset>(state, 500, 35);  // genome-scale width
}
BENCHMARK(BM_PairProbe_DynBitset8Words);

// Pre-engine reference loop on the same workloads (the old inner loop, kept
// as the differential oracle); the gap to the variants above is the engine.
void BM_PairProbe_Bitset64_Reference(benchmark::State& state) {
  pair_probe_benchmark<Bitset64>(state, 60, 35, /*reference=*/true);
}
BENCHMARK(BM_PairProbe_Bitset64_Reference);

void BM_PairProbe_Bitset64_RejectPath_Reference(benchmark::State& state) {
  pair_probe_benchmark<Bitset64>(state, 60, 8, /*reference=*/true);
}
BENCHMARK(BM_PairProbe_Bitset64_RejectPath_Reference);

void BM_PairProbe_DynBitset2Words_Reference(benchmark::State& state) {
  pair_probe_benchmark<DynBitset>(state, 66, 35, /*reference=*/true);
}
BENCHMARK(BM_PairProbe_DynBitset2Words_Reference);

void BM_PairProbe_DynBitset2Words_RejectPath_Reference(
    benchmark::State& state) {
  pair_probe_benchmark<DynBitset>(state, 66, 8, /*reference=*/true);
}
BENCHMARK(BM_PairProbe_DynBitset2Words_RejectPath_Reference);

void BM_PairProbe_DynBitset8Words_Reference(benchmark::State& state) {
  pair_probe_benchmark<DynBitset>(state, 500, 35, /*reference=*/true);
}
BENCHMARK(BM_PairProbe_DynBitset8Words_Reference);

void BM_YeastFirstIterations(benchmark::State& state) {
  // End-to-end cost of the first eight iterations on the real reduced
  // Network I problem (exact solver machinery, modular rank test).
  auto compressed = compress(models::yeast_network_1());
  auto problem = to_problem<CheckedI64>(compressed);
  for (auto _ : state) {
    SolverOptions options;
    int iterations = 0;
    // Stop early by throwing out of the observer (caught below).
    options.on_iteration = [&](const IterationStats&) {
      if (++iterations >= 8) throw std::runtime_error("stop");
    };
    try {
      auto result = solve_efms<CheckedI64, DynBitset>(problem, options);
      benchmark::DoNotOptimize(result.columns.size());
    } catch (const std::runtime_error&) {
    }
  }
}
BENCHMARK(BM_YeastFirstIterations)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
