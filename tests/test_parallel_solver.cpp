// Algorithm 2 (combinatorial parallel Nullspace Algorithm) validation:
// exact agreement with Algorithm 1 for every rank count, candidate-count
// conservation, and the memory-budget failure mode.
#include "core/combinatorial_parallel.hpp"

#include <gtest/gtest.h>

#include "compress/compression.hpp"
#include "efm_test_util.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "nullspace/efm.hpp"

namespace elmo {
namespace {

TEST(ParallelSolver, SingleRankMatchesSerialExactly) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = solve_efms<CheckedI64, Bitset64>(problem);
  ParallelOptions options;
  options.num_ranks = 1;
  auto parallel =
      solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
  EXPECT_EQ(expand_and_canonicalize(serial.columns, compressed, net),
            expand_and_canonicalize(parallel.columns, compressed, net));
  EXPECT_EQ(parallel.stats.total_pairs_probed,
            serial.stats.total_pairs_probed);
  EXPECT_EQ(parallel.stats.total_accepted, serial.stats.total_accepted);
}

class RankCountTest : public ::testing::TestWithParam<int> {};

TEST_P(RankCountTest, ToyAgreesWithSerial) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);

  ParallelOptions options;
  options.num_ranks = GetParam();
  auto parallel =
      solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
  EXPECT_EQ(expand_and_canonicalize(parallel.columns, compressed, net),
            serial);
}

TEST_P(RankCountTest, PairCountIndependentOfRanks) {
  // The paper's "total # candidate modes" is invariant: the pair space is
  // partitioned, never changed (Table II shows one number for all core
  // counts).
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  auto serial = solve_efms<CheckedI64, Bitset64>(problem);
  ParallelOptions options;
  options.num_ranks = GetParam();
  auto parallel =
      solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
  EXPECT_EQ(parallel.stats.total_pairs_probed,
            serial.stats.total_pairs_probed);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCountTest, ::testing::Values(1, 2, 3, 4, 7, 16));

TEST(ParallelSolver, RandomNetworksAgreeWithSerial) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    models::RandomNetworkSpec spec;
    spec.seed = seed;
    spec.num_metabolites = 4 + seed % 4;
    spec.num_extra_reactions = 3 + seed % 3;
    Network net = models::random_network(spec);
    auto compressed = compress(net);
    auto problem = to_problem<CheckedI64>(compressed);
    auto serial = expand_and_canonicalize(
        solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
    ParallelOptions options;
    options.num_ranks = 3;
    auto parallel =
        solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
    EXPECT_EQ(expand_and_canonicalize(parallel.columns, compressed, net),
              serial)
        << "seed " << seed;
  }
}

TEST(ParallelSolver, ReportsTrafficForMultiRankRuns) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  ParallelOptions options;
  options.num_ranks = 4;
  auto result =
      solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
  // Each iteration all-gathers on 4 ranks; traffic must be visible.
  EXPECT_GT(result.ranks.total_bytes_sent(), 0u);
  EXPECT_EQ(result.ranks.ranks.size(), 4u);
  EXPECT_GT(result.ranks.max_memory_peak(), 0u);
}

TEST(ParallelSolver, MemoryBudgetAbortsLikeNetworkII) {
  // A tiny per-rank budget reproduces the paper's Algorithm-2 failure on
  // Network II: the replicated matrix outgrows a rank's memory mid-run.
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  ParallelOptions options;
  options.num_ranks = 2;
  options.memory_budget_per_rank = 64;  // absurdly small
  EXPECT_THROW((solve_combinatorial_parallel<CheckedI64, Bitset64>(problem,
                                                                   options)),
               MemoryBudgetError);
}

TEST(ParallelSolver, CombinatorialTestWorksInParallelToo) {
  Network net = models::toy_network();
  auto compressed = compress(net);
  auto problem = to_problem<CheckedI64>(compressed);
  ParallelOptions options;
  options.num_ranks = 3;
  options.solver.test = ElementarityTest::kCombinatorial;
  auto parallel =
      solve_combinatorial_parallel<CheckedI64, Bitset64>(problem, options);
  auto serial = expand_and_canonicalize(
      solve_efms<CheckedI64, Bitset64>(problem).columns, compressed, net);
  EXPECT_EQ(expand_and_canonicalize(parallel.columns, compressed, net),
            serial);
}

}  // namespace
}  // namespace elmo
