// Seeds include:layering — layer-2 nullspace reaching up into layer-3 elmo.
#pragma once

#include "elmo/api.hpp"

struct Kernel {
  ApiThing handle;
};
