# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("bigint")
subdirs("bitset")
subdirs("linalg")
subdirs("network")
subdirs("compress")
subdirs("nullspace")
subdirs("mpsim")
subdirs("parallel")
subdirs("core")
subdirs("models")
subdirs("io")
subdirs("analysis")
