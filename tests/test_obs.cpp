// Tests for the observability layer: JSON DOM roundtrips, histogram bucket
// edges, the metrics registry under concurrent writers (run under the TSan
// preset by scripts/check.sh), trace JSON parse-back with per-rank tracks,
// and report totals cross-checked against the returned SolveStats.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "models/toy.hpp"
#include "nullspace/stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace elmo {
namespace {

// ---------------------------------------------------------------- JSON DOM

TEST(ObsJson, RoundtripPreservesValuesAndOrder) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("zeta", obs::JsonValue(std::int64_t{-42}));
  doc.set("alpha", obs::JsonValue(true));
  // > 2^53: would be silently rounded if stored as double.
  doc.set("big", obs::JsonValue(std::uint64_t{9'007'199'254'740'993ull}));
  doc.set("pi", obs::JsonValue(3.25));
  doc.set("text", obs::JsonValue("quote \" slash \\ newline \n tab \t"));
  doc.set("nothing", obs::JsonValue());
  obs::JsonValue list = obs::JsonValue::array();
  list.push_back(obs::JsonValue(std::uint64_t{1}));
  list.push_back(obs::JsonValue("two"));
  obs::JsonValue nested = obs::JsonValue::object();
  nested.set("k", obs::JsonValue(std::int64_t{7}));
  list.push_back(std::move(nested));
  doc.set("list", std::move(list));

  for (int indent : {-1, 0, 2}) {
    std::string error;
    obs::JsonValue back = obs::parse_json(doc.dump(indent), &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(back.kind(), obs::JsonValue::Kind::kObject);
    // Insertion order survives the roundtrip.
    ASSERT_EQ(back.as_object().size(), 7u);
    EXPECT_EQ(back.as_object()[0].first, "zeta");
    EXPECT_EQ(back.as_object()[1].first, "alpha");
    EXPECT_EQ(back.find("zeta")->as_int(), -42);
    EXPECT_TRUE(back.find("alpha")->as_bool());
    EXPECT_EQ(back.find("big")->as_uint(), 9'007'199'254'740'993ull);
    EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.25);
    EXPECT_EQ(back.find("text")->as_string(),
              "quote \" slash \\ newline \n tab \t");
    EXPECT_TRUE(back.find("nothing")->is_null());
    const auto& arr = back.find("list")->as_array();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr[0].as_uint(), 1u);
    EXPECT_EQ(arr[1].as_string(), "two");
    EXPECT_EQ(arr[2].find("k")->as_int(), 7);
  }
}

TEST(ObsJson, MalformedInputReportsError) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "[1 2]", "nul"}) {
    std::string error;
    obs::JsonValue v = obs::parse_json(bad, &error);
    EXPECT_FALSE(error.empty()) << "accepted: " << bad;
    EXPECT_TRUE(v.is_null());
  }
}

// ------------------------------------------------------- histogram buckets

TEST(ObsMetrics, HistogramBucketEdges) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  // Power-of-two boundaries: 2^k opens bucket k+1, 2^k - 1 closes bucket k.
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t pow = std::uint64_t{1} << k;
    EXPECT_EQ(obs::histogram_bucket(pow), k + 1) << "2^" << k;
    EXPECT_EQ(obs::histogram_bucket(pow - 1), k) << "2^" << k << " - 1";
  }
  EXPECT_EQ(obs::histogram_bucket(std::numeric_limits<std::uint64_t>::max()),
            64u);

  EXPECT_EQ(obs::histogram_bucket_low(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_low(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_low(2), 2u);
  EXPECT_EQ(obs::histogram_bucket_low(3), 4u);
  EXPECT_EQ(obs::histogram_bucket_low(64), std::uint64_t{1} << 63);
  // Every value lands in the bucket whose low bound it is >= of.
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    EXPECT_EQ(obs::histogram_bucket(obs::histogram_bucket_low(i)), i);
  }
}

// --------------------------------------------------------- metrics registry

TEST(ObsMetrics, DisabledRegistryRecordsNothing) {
  obs::Registry registry;  // disabled by default
  obs::Counter c = registry.counter("c");
  obs::Gauge g = registry.gauge("g");
  obs::Histogram h = registry.histogram("h");
  c.add(5);
  g.set(9);
  h.observe(100);
  auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.gauges.at("g").value, 0u);
  EXPECT_EQ(snap.gauges.at("g").max, 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(ObsMetrics, EnabledRegistryAccumulatesAndResets) {
  obs::Registry registry;
  registry.set_enabled(true);
  obs::Counter c = registry.counter("c");
  // Interning is idempotent: the second handle hits the same cells.
  obs::Counter c2 = registry.counter("c");
  obs::Gauge g = registry.gauge("g");
  obs::Histogram h = registry.histogram("h");

  c.add(3);
  c2.add(4);
  c.add(0);  // no-op by contract
  g.set(10);
  g.set(7);  // max keeps 10, value follows
  h.observe(0);
  h.observe(1);
  h.observe(1023);
  h.observe(1024);

  auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 7u);
  EXPECT_EQ(snap.gauges.at("g").value, 7u);
  EXPECT_EQ(snap.gauges.at("g").max, 10u);
  const auto& hist = snap.histograms.at("h");
  EXPECT_EQ(hist.count, 4u);
  EXPECT_EQ(hist.sum, 0u + 1u + 1023u + 1024u);
  EXPECT_EQ(hist.buckets[0], 1u);
  EXPECT_EQ(hist.buckets[1], 1u);
  EXPECT_EQ(hist.buckets[10], 1u);  // 1023 = 2^10 - 1
  EXPECT_EQ(hist.buckets[11], 1u);  // 1024 = 2^10

  // Snapshot serialises; counters appear under their names.
  obs::JsonValue json = snap.to_json();
  ASSERT_NE(json.find("counters"), nullptr);
  EXPECT_EQ(json.find("counters")->find("c")->as_uint(), 7u);

  registry.reset();
  auto zeroed = registry.snapshot();
  EXPECT_EQ(zeroed.counters.at("c"), 0u);
  EXPECT_EQ(zeroed.gauges.at("g").max, 0u);
  EXPECT_EQ(zeroed.histograms.at("h").count, 0u);
}

TEST(ObsMetrics, ConcurrentWritersSumExactly) {
  obs::Registry registry;
  registry.set_enabled(true);
  obs::Counter counter = registry.counter("hits");
  obs::Histogram hist = registry.histogram("values");
  obs::Gauge gauge = registry.gauge("level");

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.add(1);
        hist.observe(static_cast<std::uint64_t>(i % 7));
        gauge.set(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& w : workers) w.join();

  auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("hits"),
            std::uint64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(snap.histograms.at("values").count,
            std::uint64_t{kThreads} * kOpsPerThread);
  EXPECT_LT(snap.gauges.at("level").max, std::uint64_t{kThreads});
}

// ------------------------------------------------------------------- trace

TEST(ObsTrace, JsonParsesBackWithNamedTracks) {
  obs::TraceRecorder recorder;
  obs::install_trace(&recorder);

  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([r] {
      obs::set_current_thread_name("rank " + std::to_string(r));
      obs::TraceSpan span("rank test", "phase");
      obs::trace_counter("columns", 10 + static_cast<std::uint64_t>(r));
    });
  }
  for (auto& t : ranks) t.join();
  obs::trace_instant("retry", "combined", "subset [0] attempt 2");
  obs::install_trace(nullptr);

  EXPECT_EQ(obs::trace(), nullptr);
  ASSERT_GT(recorder.event_count(), 0u);

  std::string error;
  obs::JsonValue doc = obs::parse_json(recorder.to_json(), &error);
  ASSERT_TRUE(error.empty()) << error;
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> thread_names;
  bool saw_span = false, saw_counter = false, saw_instant = false;
  for (const auto& ev : events->as_array()) {
    const std::string& phase = ev.find("ph")->as_string();
    if (phase == "M") {
      EXPECT_EQ(ev.find("name")->as_string(), "thread_name");
      thread_names.insert(ev.find("args")->find("name")->as_string());
    } else if (phase == "X") {
      saw_span = true;
      EXPECT_EQ(ev.find("name")->as_string(), "rank test");
      EXPECT_EQ(ev.find("cat")->as_string(), "phase");
      EXPECT_GE(ev.find("ts")->as_double(), 0.0);
      EXPECT_GE(ev.find("dur")->as_double(), 0.0);
    } else if (phase == "C") {
      saw_counter = true;
      EXPECT_EQ(ev.find("name")->as_string(), "columns");
      EXPECT_GE(ev.find("args")->find("value")->as_uint(), 10u);
    } else if (phase == "i") {
      saw_instant = true;
      EXPECT_EQ(ev.find("s")->as_string(), "t");
      EXPECT_EQ(ev.find("args")->find("detail")->as_string(),
                "subset [0] attempt 2");
    }
  }
  EXPECT_TRUE(thread_names.count("rank 0"));
  EXPECT_TRUE(thread_names.count("rank 1"));
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);
}

TEST(ObsTrace, DisabledTracingCostsNothingAndRecordsNothing) {
  ASSERT_EQ(obs::trace(), nullptr);
  {
    obs::TraceSpan span("unrecorded", "solve");
    obs::trace_instant("unrecorded", "solve");
    obs::trace_counter("unrecorded", 1);
    obs::set_current_thread_name("nobody");
  }
  obs::TraceRecorder recorder;
  EXPECT_EQ(recorder.event_count(), 0u);
}

// ----------------------------------------------------------- solve history

TEST(ObsStats, MergePreservesIterationHistory) {
  SolveStats a;
  a.keep_history = true;
  IterationStats it1;
  it1.row = 0;
  it1.pairs_probed = 6;
  it1.accepted = 2;
  it1.columns_after = 5;
  a.absorb(it1);

  SolveStats b;
  b.keep_history = true;
  IterationStats it2;
  it2.row = 1;
  it2.pairs_probed = 4;
  it2.accepted = 1;
  it2.columns_after = 6;
  b.absorb(it2);

  // Regression: merge() used to drop `other.history`, losing every
  // subproblem's growth curve after the first.
  a.merge(b);
  ASSERT_EQ(a.history.size(), 2u);
  EXPECT_EQ(a.history[0].row, 0u);
  EXPECT_EQ(a.history[1].row, 1u);
  EXPECT_EQ(a.total_pairs_probed, 10u);
  EXPECT_EQ(a.iterations, 2u);

  // keep_history=false absorb records totals only.
  SolveStats c;
  c.absorb(it1);
  EXPECT_TRUE(c.history.empty());
  // ...and merging history INTO it still preserves the incoming curve.
  c.merge(a);
  EXPECT_TRUE(c.keep_history);
  EXPECT_EQ(c.history.size(), 2u);
}

// ---------------------------------------------------- report cross-checks

TEST(ObsReport, TotalsMatchSolveStats) {
  Network net = models::toy_network();
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = 2;
  options.partition_reactions = {"r6r", "r8r"};
  options.record_history = true;
  auto result = compute_efms(net, options);
  ASSERT_EQ(result.num_modes(), 8u);

  obs::SolveReport report = make_solve_report(result, options, "toy");
  EXPECT_EQ(report.network, "toy");
  EXPECT_EQ(report.algorithm, "combined");
  EXPECT_EQ(report.num_ranks, 2);
  EXPECT_EQ(report.num_efms, result.num_modes());
  EXPECT_EQ(report.totals.at("pairs_probed"), result.stats.total_pairs_probed);
  EXPECT_EQ(report.totals.at("rank_tests"), result.stats.total_rank_tests);
  EXPECT_EQ(report.totals.at("accepted"), result.stats.total_accepted);
  EXPECT_EQ(report.totals.at("duplicates_removed"),
            result.stats.total_duplicates_removed);
  EXPECT_EQ(report.totals.at("iterations"), result.stats.iterations);
  EXPECT_EQ(report.peak_columns, result.stats.peak_columns);
  EXPECT_EQ(report.subsets.size(), result.subsets.size());
  ASSERT_FALSE(report.subsets.empty());
  for (const auto& subset : report.subsets) {
    if (!subset.resumed) {
      EXPECT_FALSE(subset.ranks.empty());
    }
  }

  // The history made it into the report, and its per-iteration counters sum
  // to the solve totals.
  ASSERT_EQ(report.iterations.size(), result.stats.history.size());
  ASSERT_FALSE(report.iterations.empty());
  std::uint64_t history_pairs = 0;
  for (const auto& it : report.iterations) history_pairs += it.pairs_probed;
  EXPECT_EQ(history_pairs, result.stats.total_pairs_probed);

  // The serialised document parses back and carries the same totals.
  std::string error;
  obs::JsonValue doc = obs::parse_json(report.to_json().dump(2), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.find("totals")->find("pairs_probed")->as_uint(),
            result.stats.total_pairs_probed);
  EXPECT_EQ(doc.find("num_efms")->as_uint(), result.num_modes());
  EXPECT_EQ(doc.find("subsets")->as_array().size(), report.subsets.size());
}

TEST(ObsReport, GlobalMetricsMatchSerialSolveTotals) {
  auto& registry = obs::Registry::global();
  registry.reset();
  registry.set_enabled(true);

  Network net = models::toy_network();
  auto result = compute_efms(net);

  auto snap = registry.snapshot();
  registry.set_enabled(false);
  registry.reset();

  EXPECT_EQ(snap.counters.at("solver.pairs_probed"),
            result.stats.total_pairs_probed);
  EXPECT_EQ(snap.counters.at("solver.rank_tests"),
            result.stats.total_rank_tests);
  EXPECT_EQ(snap.counters.at("solver.accepted"),
            result.stats.total_accepted);
  EXPECT_EQ(snap.counters.at("solver.iterations"), result.stats.iterations);
  EXPECT_EQ(snap.histograms.at("solver.iteration_pairs").count,
            result.stats.iterations);
  EXPECT_EQ(snap.gauges.at("solver.columns").max, result.stats.peak_columns);
}

}  // namespace
}  // namespace elmo
