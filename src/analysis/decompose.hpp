// Decomposition of a measured flux distribution onto elementary flux modes.
//
// One of the EFM applications motivating the paper (§I, refs [8]-[12],
// Schwartz & Kanehisa; Zhao & Kurata): any steady-state flux distribution v
// is a nonnegative combination of EFMs (with sign freedom on fully
// reversible modes).  Recovering weights lambda with
//
//      v  ≈  Σ_m lambda_m · e_m,   lambda_m >= 0,
//
// attributes observed fluxes to pathways.  The decomposition is generally
// non-unique; this module implements the greedy residual-projection scheme
// (repeatedly absorb the mode that reduces the residual most — the
// practical baseline in the cited work) over exact rationals, so a claimed
// exact decomposition really is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"

namespace elmo {

struct DecompositionTerm {
  std::size_t mode_index;  // into the supplied EFM list
  /// Coefficient applied to the mode AS STORED; negative only when a fully
  /// reversible mode was used in its mirrored orientation.
  BigRational weight;
};

struct Decomposition {
  std::vector<DecompositionTerm> terms;
  /// v - sum(terms): the unexplained remainder, exact.
  std::vector<BigRational> residual;
  /// True iff the residual is identically zero.
  bool exact = false;

  /// Sum of |residual| entries as a double (diagnostic).
  [[nodiscard]] double residual_l1() const;
};

struct DecomposeOptions {
  /// Stop after this many greedy picks (0 = number of modes).
  std::size_t max_terms = 0;
};

/// Greedily decompose `flux` onto `modes` (each a primitive integer vector
/// over the same reactions, as produced by compute_efms).
///
/// Irreversibility is respected through the mode set itself: every mode is
/// used with a nonnegative weight, and a fully reversible mode may also be
/// used negated (the caller's mode list holds one orientation per cycle).
/// `reversible` flags reactions, to decide which modes may flip.
Decomposition decompose_flux(const std::vector<BigRational>& flux,
                             const std::vector<std::vector<BigInt>>& modes,
                             const std::vector<bool>& reversible,
                             const DecomposeOptions& options = {});

/// Convenience: integer flux input.
Decomposition decompose_flux(const std::vector<BigInt>& flux,
                             const std::vector<std::vector<BigInt>>& modes,
                             const std::vector<bool>& reversible,
                             const DecomposeOptions& options = {});

}  // namespace elmo
