// Wall-clock timing utilities.
//
// Stopwatch    - simple start/elapsed timer.
// Phase        - interned ids for the algorithm's recurring phases (the
//                rows of Tables II and III) so hot-path accounting is an
//                array add, not a map lookup.
// PhaseTimer   - accumulates per-phase durations; interned phases live in a
//                fixed array, ad-hoc names fall back to a map, and the
//                string API is preserved for merge/report code.
// ScopedPhase  - RAII adapter adding a scope's duration to one phase; also
//                emits a trace span when a TraceRecorder is installed, so
//                every existing phase site doubles as an instrumentation
//                point.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace elmo {

/// Monotonic wall-clock stopwatch measuring seconds as double.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// The recurring phases of Algorithms 1-4.  Interned so the per-block
/// accounting in the iteration kernel indexes an array instead of hashing
/// a std::string (bench_micro_obs measures the difference).
enum class Phase : std::uint8_t {
  kGenCand = 0,
  kRankTest,
  kCommunicate,
  kMerge,
  kCheckpoint,
  kCount,
};

inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kCount);

/// Paper-style display name; these strings are the stable external API
/// (reports, tables, tests) and match the pre-interning phase keys.
inline constexpr const char* phase_name(Phase phase) {
  constexpr const char* kNames[kNumPhases] = {
      "gen cand", "rank test", "communicate", "merge", "checkpoint"};
  return kNames[static_cast<std::size_t>(phase)];
}

/// Inverse of phase_name; nullopt for names outside the interned set.
inline std::optional<Phase> phase_from_name(std::string_view name) {
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (name == phase_name(static_cast<Phase>(p)))
      return static_cast<Phase>(p);
  }
  return std::nullopt;
}

/// Accumulates wall-clock time into named phases.
class PhaseTimer {
 public:
  /// Hot path: add `seconds` to an interned phase.
  void add(Phase phase, double seconds) {
    interned_[static_cast<std::size_t>(phase)] += seconds;
  }

  /// String API: interned names hit the array, anything else lands in the
  /// ad-hoc map (created on first use).
  void add(const std::string& name, double seconds) {
    if (auto phase = phase_from_name(name)) {
      add(*phase, seconds);
    } else {
      extra_[name] += seconds;
    }
  }

  [[nodiscard]] double seconds(Phase phase) const {
    return interned_[static_cast<std::size_t>(phase)];
  }

  /// Total accumulated seconds for `name`; 0 if the phase never ran.
  [[nodiscard]] double seconds(const std::string& name) const {
    if (auto phase = phase_from_name(name)) return seconds(*phase);
    auto it = extra_.find(name);
    return it == extra_.end() ? 0.0 : it->second;
  }

  /// Merge another timer's totals into this one (phase-wise sum).
  void merge(const PhaseTimer& other) {
    for (std::size_t p = 0; p < kNumPhases; ++p)
      interned_[p] += other.interned_[p];
    for (const auto& [name, secs] : other.extra_) extra_[name] += secs;
  }

  /// Phase-wise maximum; used to aggregate per-rank timings the way the
  /// paper reports them (slowest rank bounds the iteration).
  void merge_max(const PhaseTimer& other) {
    for (std::size_t p = 0; p < kNumPhases; ++p)
      interned_[p] = std::max(interned_[p], other.interned_[p]);
    for (const auto& [name, secs] : other.extra_) {
      auto [it, inserted] = extra_.emplace(name, secs);
      if (!inserted && secs > it->second) it->second = secs;
    }
  }

  /// Name -> seconds view of every phase that accumulated time (interned
  /// and ad hoc).  Built on demand; use seconds() for single lookups.
  [[nodiscard]] std::map<std::string, double> totals() const {
    std::map<std::string, double> out = extra_;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (interned_[p] != 0.0)
        out[phase_name(static_cast<Phase>(p))] = interned_[p];
    }
    return out;
  }

  void clear() {
    interned_.fill(0.0);
    extra_.clear();
  }

 private:
  std::array<double, kNumPhases> interned_{};
  std::map<std::string, double> extra_;
};

/// RAII helper: adds the lifetime of the object to `timer[phase]`, and
/// records a matching trace span when tracing is installed.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, Phase phase)
      : timer_(timer), phase_(phase), recorder_(obs::trace()) {
    if (recorder_ != nullptr) start_us_ = recorder_->now_us();
  }

  ScopedPhase(PhaseTimer& timer, std::string phase)
      : timer_(timer), recorder_(obs::trace()) {
    if (auto interned = phase_from_name(phase)) {
      phase_ = *interned;
    } else {
      name_ = std::move(phase);
    }
    if (recorder_ != nullptr) start_us_ = recorder_->now_us();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    const double elapsed = watch_.seconds();
    if (name_.empty()) {
      timer_.add(phase_, elapsed);
    } else {
      timer_.add(name_, elapsed);
    }
    if (recorder_ != nullptr) {
      recorder_->record_complete(
          name_.empty() ? phase_name(phase_) : name_.c_str(), "phase",
          start_us_, recorder_->now_us() - start_us_);
    }
  }

 private:
  PhaseTimer& timer_;
  Phase phase_ = Phase::kGenCand;
  std::string name_;  // non-empty only for non-interned phases
  obs::TraceRecorder* recorder_;
  double start_us_ = 0.0;
  Stopwatch watch_;
};

}  // namespace elmo
