// Seeded violations for the typestate pass.  Never compiled — only
// analyzed.  The type names match the tracked machines (SpillFile,
// MemoryLease, SparseRankTester, Watchdog, the checkpoint free
// functions); the bodies walk each machine into a bad state.
namespace fixture_ts {

struct SpillFile {
  explicit SpillFile(const char* directory);
  void append_block(int block);
  void for_each_block(int sink);
};

struct MemoryLease {
  void set(unsigned long bytes);
  unsigned long charged() const;
  void release();
};

struct SparseRankTester {
  void begin_iteration(int common_rows);
  bool is_elementary(int support) const;
};

struct Token {};
struct Watchdog {
  static Watchdog& global();
  Token arm(const char* what, int budget_ms);
};

bool risky();
int load_checkpoint(const char* path);
void repair_checkpoint(const char* path);

// spill-write-after-read: a block appended after the file started
// streaming back breaks the open -> write* -> read* -> close protocol.
inline void write_after_read(int block) {
  SpillFile spill("/tmp/elmo-fixture");
  spill.append_block(block);
  spill.for_each_block(block);
  spill.append_block(block);
}

// use-after-release on a merged path: the error branch releases early,
// then both paths reach the charge.
inline void early_release(unsigned long bytes) {
  MemoryLease lease;
  lease.set(bytes);
  if (risky()) lease.release();
  lease.set(bytes + 1);
}

// warm-test-before-begin: no path stages an iteration before the warm
// elementarity test.
inline bool cold_test(int support) {
  SparseRankTester tester;
  return tester.is_elementary(support);
}

// discarded-token: the temporary Token disarms in its own destructor
// before the supervised work starts.
inline void unsupervised() {
  Watchdog::global().arm("merge", 500);
}

// repair-before-resume: a damaged tail makes this load stop silently
// early; nothing trimmed the file first.
inline int resume_unrepaired(const char* path) {
  return load_checkpoint(path);
}

}  // namespace fixture_ts
