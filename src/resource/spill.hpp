// Out-of-core spill file: checksummed, framed byte blocks on disk.
//
// When the MemoryGovernor signals pressure, the solver serializes cold
// candidate blocks and appends them here instead of keeping them resident,
// then streams them back for the merge pass — turning a hard OOM into a
// bounded slowdown.  The on-disk format mirrors the checkpoint codec idiom
// (core/checkpoint.hpp): an 8-byte magic, then append-only frames of
//
//   [u64 body_size][body bytes][u32 crc32(body)]
//
// all little-endian.  Every block read back is CRC-verified; damage
// surfaces as CorruptPayloadError rather than decoded garbage.
//
// The file is created lazily on the first append, lives in the configured
// directory (or the system temp directory), and is unlinked when the
// SpillFile is destroyed — spill data never outlives the iteration that
// produced it.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "resource/governor.hpp"

namespace elmo::resource {

/// CRC-32 (IEEE 802.3, reflected) over a byte range.  Same polynomial as
/// the mpsim payload checksums, implemented locally so resource/ stays a
/// leaf module.
std::uint32_t crc32_bytes(const std::uint8_t* data, std::size_t size);

class SpillFile {
 public:
  /// `directory` of "" means the system temp directory.  The file itself
  /// is created on the first append_block().
  explicit SpillFile(std::string directory = std::string(),
                     MemoryGovernor* governor = &MemoryGovernor::global());
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  /// Append one framed, checksummed block and flush it to disk.  Credits
  /// the governor's spill ledger.
  void append_block(const std::vector<std::uint8_t>& body);

  /// Stream every block back in append order.  Safe to call repeatedly;
  /// verifies magic and per-block CRC, throwing ParseError /
  /// CorruptPayloadError on damage.
  void for_each_block(
      const std::function<void(std::vector<std::uint8_t>&&)>& fn);

  [[nodiscard]] std::size_t block_count() const { return block_count_; }
  [[nodiscard]] std::uint64_t bytes_spilled() const { return bytes_spilled_; }
  /// Empty until the first append creates the file.
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void ensure_open();

  std::string directory_;
  std::string path_;
  std::fstream file_;
  MemoryGovernor* governor_;
  std::size_t block_count_ = 0;
  std::uint64_t bytes_spilled_ = 0;  // body bytes, excluding framing
  std::uint64_t write_offset_ = 0;
};

}  // namespace elmo::resource
