// Robustness tests: the parser and deserialisers must reject arbitrary
// garbage with typed exceptions, never crash, and survive adversarial but
// well-formed inputs.
#include <gtest/gtest.h>

#include <string>

#include "bigint/bigint.hpp"
#include "mpsim/serialize.hpp"
#include "network/parser.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

TEST(ParserRobustness, RandomGarbageThrowsParseErrorNotCrash) {
  Rng rng(101);
  const char alphabet[] = "RAB12 :=<>+#\n\t externmtabolie-_";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    std::size_t length = rng.below(120);
    for (std::size_t i = 0; i < length; ++i)
      text.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    try {
      Network net = parse_network(text);
      // Parsed fine: the result must at least be internally consistent.
      (void)net.stoichiometry<BigInt>();
    } catch (const ParseError&) {
      // expected for most garbage
    } catch (const InvalidArgumentError&) {
      // duplicate names etc. surfaced through network construction
    }
  }
}

TEST(ParserRobustness, HugeCoefficientsSurvive) {
  Network net = parse_network("R1 : 40141 ATP => 40141 ADP + Pext\n");
  auto n = net.stoichiometry<BigInt>();
  bool found = false;
  for (std::size_t i = 0; i < n.rows(); ++i)
    for (std::size_t j = 0; j < n.cols(); ++j)
      if (n(i, j) == BigInt(40141)) found = true;
  EXPECT_TRUE(found);
}

TEST(ParserRobustness, DeepWhitespaceAndCommentsIgnored) {
  Network net = parse_network(
      "\n\n   # leading comment\n\t\n"
      "R1 :   A   +   2   B   =>   C   // trailing\n"
      "   \t  \n# done\n");
  EXPECT_EQ(net.num_reactions(), 1u);
  EXPECT_EQ(net.reaction(0).terms.size(), 3u);
}

TEST(ParserRobustness, CrLfLineEndings) {
  Network net = parse_network("R1 : A => B\r\nR2 : B => C\r\n");
  EXPECT_EQ(net.num_reactions(), 2u);
  // The carriage returns must not leak into names.
  EXPECT_TRUE(net.find_metabolite("B").has_value());
}

TEST(ParserRobustness, MetaboliteOnBothSidesNets) {
  // 2 A => A + B nets to: A: -1, B: +1.
  Network net = parse_network("R1 : 2 A => A + B\n");
  auto a = net.find_metabolite("A").value();
  auto b = net.find_metabolite("B").value();
  EXPECT_EQ(net.reaction(0).coefficient_of(a), -1);
  EXPECT_EQ(net.reaction(0).coefficient_of(b), 1);
}

TEST(SerializeRobustness, RandomBufferNeverCrashes) {
  Rng rng(202);
  for (int trial = 0; trial < 500; ++trial) {
    mpsim::Payload junk(rng.below(96));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.next());
    try {
      auto columns = mpsim::decode_columns<CheckedI64, Bitset64>(junk);
      (void)columns;
    } catch (const ParseError&) {
      // expected
    } catch (const std::bad_alloc&) {
      // absurd length prefixes can legitimately exceed memory limits only
      // in theory; reserve() with a huge count throws length_error instead
    } catch (const std::length_error&) {
    }
  }
}

TEST(SerializeRobustness, BigIntRoundTripTorture) {
  Rng rng(303);
  for (int trial = 0; trial < 300; ++trial) {
    BigInt v(static_cast<std::int64_t>(rng.next()));
    for (int k = 0; k < static_cast<int>(rng.below(5)); ++k)
      v = v * BigInt(static_cast<std::int64_t>(rng.next() >> 1)) +
          BigInt(static_cast<std::int64_t>(rng.next() >> 1));
    if (rng.chance(0.5)) v = -v;
    std::vector<std::uint8_t> buffer;
    v.serialize(buffer);
    const std::uint8_t* cursor = buffer.data();
    BigInt back = BigInt::deserialize(cursor, buffer.data() + buffer.size());
    EXPECT_EQ(back, v);
    EXPECT_EQ(cursor, buffer.data() + buffer.size());
  }
}

}  // namespace
}  // namespace elmo
