file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_arith.dir/bench_micro_arith.cpp.o"
  "CMakeFiles/bench_micro_arith.dir/bench_micro_arith.cpp.o.d"
  "bench_micro_arith"
  "bench_micro_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
