# Empty dependencies file for bench_ablation_ordering.
# This may be replaced when dependencies are built.
