file(REMOVE_RECURSE
  "CMakeFiles/elmo_core.dir/api.cpp.o"
  "CMakeFiles/elmo_core.dir/api.cpp.o.d"
  "libelmo_core.a"
  "libelmo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
