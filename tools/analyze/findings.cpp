#include "analyze/findings.hpp"

#include <cstdio>
#include <fstream>
#include <tuple>

namespace elmo_analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Finding::key() const {
  return pass + ":" + rule + ":" + file + ":" + std::to_string(line);
}

bool finding_less(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.pass, a.rule, a.message) <
         std::tie(b.file, b.line, b.pass, b.rule, b.message);
}

bool Baseline::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing whitespace/CR.
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    keys.insert(line.substr(start));
  }
  return true;
}

void apply_baseline(const Baseline& baseline, std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (baseline.keys.count(f.key()) != 0) f.baselined = true;
  }
}

void write_text(const std::vector<Finding>& findings, const std::string& tool,
                bool lint_compat) {
  std::size_t active = 0;
  std::size_t baselined = 0;
  for (const Finding& f : findings) {
    if (f.baselined) {
      ++baselined;
      continue;
    }
    ++active;
    const std::string rule =
        lint_compat ? f.rule : (f.pass + ":" + f.rule);
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 rule.c_str(), f.message.c_str());
  }
  if (active != 0 || baselined != 0) {
    if (baselined != 0) {
      std::fprintf(stderr, "%s: %zu finding(s), %zu baselined\n", tool.c_str(),
                   active, baselined);
    } else {
      std::fprintf(stderr, "%s: %zu finding(s)\n", tool.c_str(), active);
    }
  }
}

bool write_json(const std::string& path,
                const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) return false;
  std::size_t active = 0;
  std::size_t baselined = 0;
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (f.baselined) {
      ++baselined;
    } else {
      ++active;
    }
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"key\": \"" << json_escape(f.key()) << "\", \"pass\": \""
        << json_escape(f.pass) << "\", \"rule\": \"" << json_escape(f.rule)
        << "\", \"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"baselined\": " << (f.baselined ? "true" : "false")
        << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (first ? "" : "\n  ") << "],\n";
  out << "  \"summary\": {\"total\": " << findings.size()
      << ", \"active\": " << active << ", \"baselined\": " << baselined
      << "}\n}\n";
  return static_cast<bool>(out);
}

void write_sarif(std::ostream& out, const std::vector<Finding>& findings) {
  // Rule table: unique pass:rule ids in first-appearance order.
  std::vector<std::string> rule_ids;
  std::set<std::string> seen_rules;
  for (const Finding& f : findings) {
    const std::string id = f.pass + ":" + f.rule;
    if (seen_rules.insert(id).second) rule_ids.push_back(id);
  }
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"elmo_analyze\",\n"
      << "          \"rules\": [";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\"id\": \"" << json_escape(rule_ids[i])
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule_ids[i]) << "\"}}";
  }
  out << (rule_ids.empty() ? "" : "\n          ") << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    const std::size_t line = f.line == 0 ? 1 : f.line;  // SARIF wants >= 1
    out << "        {\"ruleId\": \"" << json_escape(f.pass + ":" + f.rule)
        << "\", \"level\": \"" << (f.baselined ? "note" : "error")
        << "\", \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": " << line
        << "}}}]";
    if (f.baselined) {
      out << ", \"suppressions\": [{\"kind\": \"external\"}]";
    }
    out << "}";
  }
  out << (first ? "" : "\n      ") << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

bool write_baseline(const std::string& path,
                    const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# elmo_analyze baseline — one tolerated finding key per line.\n"
      << "# Regenerate with: elmo_analyze --write-baseline=" << path << "\n"
      << "# Keep this near-empty: fix true positives, annotate intentional\n"
      << "# sites with lint:allow(<rule>) instead of baselining them.\n";
  for (const Finding& f : findings) out << f.key() << "\n";
  return static_cast<bool>(out);
}

std::size_t count_active(const std::vector<Finding>& findings) {
  std::size_t active = 0;
  for (const Finding& f : findings) {
    if (!f.baselined) ++active;
  }
  return active;
}

}  // namespace elmo_analyze
