// Seeds every lint rule: naked-new, no-rand, catch-all, reinterpret-cast.
#include <cstdlib>

int* leak_it() { return new int(3); }

int weak_random() { return rand(); }

int swallow() {
  try {
    return weak_random();
  } catch (...) {
    return -1;
  }
}

long as_long(int* p) { return *reinterpret_cast<long*>(p); }
