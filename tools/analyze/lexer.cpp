#include "analyze/lexer.hpp"

#include <cctype>

namespace elmo_analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Two/three-character operators the passes care about.  Longest match
// first; everything else falls back to single-character punctuation.
const char* const kMultiOps[] = {
    "<<=", ">>=", "->*", "...", "::", "<<", ">>", "->", "==", "!=",
    "<=",  ">=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

}  // namespace

std::vector<Token> lex(const std::string& stripped) {
  std::vector<Token> toks;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = stripped.size();
  while (i < n) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#') {
      // Preprocessor directive: skip to end of line, honouring backslash
      // continuations.
      while (i < n) {
        std::size_t nl = stripped.find('\n', i);
        if (nl == std::string::npos) {
          i = n;
          break;
        }
        // Find last non-space character before the newline.
        std::size_t last = nl;
        while (last > i &&
               std::isspace(static_cast<unsigned char>(stripped[last - 1])) !=
                   0) {
          --last;
        }
        const bool continued = last > i && stripped[last - 1] == '\\';
        i = nl + 1;
        ++line;
        if (!continued) break;
      }
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(stripped[j])) ++j;
      toks.push_back({Token::Kind::kIdent, stripped.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(stripped[j]) || stripped[j] == '.')) ++j;
      toks.push_back({Token::Kind::kNumber, stripped.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* op : kMultiOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (stripped.compare(i, len, op) == 0) {
        toks.push_back({Token::Kind::kPunct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

std::size_t match_backward(const std::vector<Token>& toks,
                           std::size_t close_idx) {
  if (close_idx >= toks.size()) return std::string::npos;
  const std::string& close = toks[close_idx].text;
  std::string open;
  if (close == ")") {
    open = "(";
  } else if (close == "]") {
    open = "[";
  } else if (close == "}") {
    open = "{";
  } else {
    return std::string::npos;
  }
  int depth = 0;
  for (std::size_t i = close_idx + 1; i-- > 0;) {
    if (toks[i].text == close) {
      ++depth;
    } else if (toks[i].text == open) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::size_t match_forward(const std::vector<Token>& toks,
                          std::size_t open_idx) {
  if (open_idx >= toks.size()) return std::string::npos;
  const std::string& open = toks[open_idx].text;
  std::string close;
  if (open == "(") {
    close = ")";
  } else if (open == "[") {
    close = "]";
  } else if (open == "{") {
    close = "}";
  } else {
    return std::string::npos;
  }
  int depth = 0;
  for (std::size_t i = open_idx; i < toks.size(); ++i) {
    if (toks[i].text == open) {
      ++depth;
    } else if (toks[i].text == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

}  // namespace elmo_analyze
