# Empty dependencies file for test_cross_algorithm.
# This may be replaced when dependencies are built.
