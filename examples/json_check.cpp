// json_check — tiny JSON validator for the observability smoke tests.
//
//   $ json_check report.json --require totals.pairs_probed --require subsets
//
// Exits 0 iff the file parses as JSON and every --require KEY (dot-
// separated object path) resolves.  Keys may themselves contain dots
// ("counters.solver.pairs_probed" matches {"counters":{"solver.pairs_probed":
// ...}}): segments are matched longest-join first with backtracking.  Used
// by scripts/check.sh to validate the artifacts elmo_cli
// --trace/--metrics/--report emit.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

// Resolve a dot-separated path, preferring the longest object key that
// matches a join of leading segments (metric names contain dots).
const elmo::obs::JsonValue* resolve(const elmo::obs::JsonValue* node,
                                    const std::vector<std::string>& parts,
                                    std::size_t from) {
  if (from == parts.size()) return node;
  for (std::size_t to = parts.size(); to > from; --to) {
    std::string key = parts[from];
    for (std::size_t i = from + 1; i < to; ++i) key += "." + parts[i];
    if (const elmo::obs::JsonValue* child = node->find(key)) {
      if (const elmo::obs::JsonValue* hit = resolve(child, parts, to))
        return hit;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--require")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "json_check: --require needs a key\n");
        return 2;
      }
      required.push_back(argv[++i]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: json_check FILE [--require KEY]...\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: json_check FILE [--require KEY]...\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  std::string error;
  elmo::obs::JsonValue root = elmo::obs::parse_json(text.str(), &error);
  if (!error.empty()) {
    std::fprintf(stderr, "json_check: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  for (const auto& key : required) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= key.size()) {
      std::size_t dot = key.find('.', start);
      if (dot == std::string::npos) dot = key.size();
      parts.push_back(key.substr(start, dot - start));
      start = dot + 1;
    }
    if (resolve(&root, parts, 0) == nullptr) {
      std::fprintf(stderr, "json_check: %s: missing key '%s'\n",
                   path.c_str(), key.c_str());
      return 1;
    }
  }
  return 0;
}
