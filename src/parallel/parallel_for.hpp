// Parallel loops over an index range on a ThreadPool.
//
// parallel_for_dynamic is the scheduling primitive: workers grab adaptive
// batches off a shared atomic cursor, so ranges with wildly skewed
// per-index cost (the candidate pair space: survivor density varies by
// orders of magnitude across tiles) no longer idle workers the way static
// slicing does.  parallel_for_chunks keeps its old signature but now runs
// on the dynamic scheduler.
#pragma once

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace elmo {

/// Apply body(worker, begin, end) over dynamically stolen batches of
/// [0, total).  Each worker repeatedly claims the next batch from a shared
/// cursor; the batch size adapts as max(min_grain, remaining / (4 *
/// workers)), so early grabs are large (amortising the claim) and late
/// grabs shrink toward min_grain (balancing the tail).  `worker` is the
/// claiming lane in [0, pool.size()) — stable across all of one lane's
/// batches, for per-worker accumulators.
///
/// Exceptions from any batch propagate (first one wins); a failed lane
/// stops claiming but other lanes run the range to completion, and
/// secondary exceptions are recorded, never silently dropped.
template <typename Body>
void parallel_for_dynamic(ThreadPool& pool, std::uint64_t total,
                          std::uint64_t min_grain, const Body& body) {
  if (total == 0) return;
  const auto workers = static_cast<std::uint64_t>(pool.size());
  min_grain = std::max<std::uint64_t>(min_grain, 1);
  if (workers <= 1 || total <= min_grain) {
    body(0, std::uint64_t{0}, total);
    return;
  }

  std::atomic<std::uint64_t> cursor{0};
  auto lane = [&cursor, &body, total, min_grain, workers](int worker) {
    std::uint64_t begin = cursor.load(std::memory_order_relaxed);
    for (;;) {
      if (begin >= total) return;
      const std::uint64_t remaining = total - begin;
      const std::uint64_t grab =
          std::min(remaining,
                   std::max(min_grain, remaining / (4 * workers)));
      // On CAS failure `begin` reloads the cursor and the size recomputes.
      if (!cursor.compare_exchange_weak(begin, begin + grab,
                                        std::memory_order_relaxed)) {
        continue;
      }
      body(worker, begin, begin + grab);
      begin = cursor.load(std::memory_order_relaxed);
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(workers));
  for (std::uint64_t w = 0; w < workers; ++w) {
    futures.push_back(pool.submit([&lane, w] { lane(static_cast<int>(w)); }));
  }
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      } else {
        // Secondary failure: only one exception can propagate, but the
        // others are recorded, never silently dropped.
        obs::record_suppressed_exception("parallel_for_dynamic");
      }
    }
  }
  if (first) std::rethrow_exception(first);
}

/// Apply body(begin, end) over [0, total) in parallel.  Historically this
/// issued one static near-equal slice per worker; it now rides the dynamic
/// scheduler (callers were already required to accept arbitrary disjoint
/// sub-ranges), with a grain that bounds the claim overhead at a few dozen
/// batches per worker.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::uint64_t total,
                         const Body& body) {
  const auto workers = static_cast<std::uint64_t>(
      std::max<std::size_t>(pool.size(), 1));
  const std::uint64_t min_grain =
      std::max<std::uint64_t>(1, total / (16 * workers));
  parallel_for_dynamic(
      pool, total, min_grain,
      [&body](int, std::uint64_t begin, std::uint64_t end) {
        body(begin, end);
      });
}

}  // namespace elmo
