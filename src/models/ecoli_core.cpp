#include "models/ecoli_core.hpp"

#include "network/network.hpp"
#include "network/parser.hpp"

namespace elmo::models {

namespace {

// A compact E. coli central-metabolism model in the spirit of Trinh &
// Srienc's minimal-cell designs (paper refs [5], [6]): glycolysis, the
// pentose-phosphate shunt, the TCA cycle, and the mixed-acid fermentation
// branches, with glucose uptake and the usual fermentation products.
// Deliberately mid-sized (~10^3-10^4 EFMs): large enough that algorithmic
// differences show, small enough for tests and benches.
constexpr const char* kEcoliCore = R"(
# E. coli core carbon metabolism (elmo's mid-size test model).
external BIOMASS

# -- uptake & phosphotransferase --
GLCpts : GLCext + PEP => G6P + PYR

# -- glycolysis --
PGI  : G6P <=> F6P
PFK  : F6P + ATP => FDP + ADP
FBP  : FDP => F6P
FBA  : FDP <=> G3P + DHAP
TPI  : DHAP <=> G3P
GAPD : G3P + NAD + ADP <=> PG3 + ATP + NADH
ENO  : PG3 <=> PEP
PYK  : PEP + ADP => PYR + ATP
PPS  : PYR + 2 ATP => PEP + 2 ADP

# -- pentose phosphate pathway --
G6PDH : G6P + 2 NADP => RU5P + CO2 + 2 NADPH
RPI   : RU5P <=> R5P
RPE   : RU5P <=> X5P
TKT1  : R5P + X5P <=> G3P + S7P
TALA  : G3P + S7P <=> E4P + F6P
TKT2  : X5P + E4P <=> F6P + G3P

# -- anaplerosis & TCA --
PDH  : PYR + COA + NAD => ACCOA + CO2 + NADH
PPC  : PEP + CO2 => OAA
PCK  : OAA + ATP => PEP + CO2 + ADP
CS   : ACCOA + OAA => CIT + COA
ACN  : CIT <=> ICIT
ICD  : ICIT + NADP <=> AKG + CO2 + NADPH
AKGD : AKG + COA + NAD => SUCCOA + CO2 + NADH
SUCS : SUCCOA + ADP <=> SUCC + ATP + COA
FRD  : FUM + NADH => SUCC + NAD
SDH  : SUCC + NAD => FUM + NADH
FUMR : FUM <=> MAL
MDH  : MAL + NAD <=> OAA + NADH
MAE  : MAL + NADP => PYR + CO2 + NADPH

# -- glyoxylate shunt --
ICL  : ICIT => GLX + SUCC
MALS : ACCOA + GLX => MAL + COA

# -- fermentation --
PFL  : PYR + COA => ACCOA + FOR
LDH  : PYR + NADH <=> LAC + NAD
ALDH : ACCOA + 2 NADH <=> ETOH + 2 NAD + COA
PTA  : ACCOA + ADP <=> ACE + ATP + COA

# -- respiration (lumped) --
NDH  : NADH + 2 ADP + O2 => NAD + 2 ATP
THD  : NADPH + NAD => NADP + NADH

# -- maintenance & biomass (lumped, small coefficients) --
ATPM : ATP => ADP
BIOS : 2 G6P + 2 PEP + 2 PYR + 2 ACCOA + OAA + AKG + 4 NADPH + 10 ATP + R5P + E4P => BIOMASS + 2 COA + 4 NADP + 10 ADP + 2 NADH + 2 NAD

# -- exchanges --
EXco2  : CO2 <=> CO2ext
EXo2   : O2ext => O2
EXac   : ACE => ACEext
EXetoh : ETOH => ETOHext
EXfor  : FOR => FORext
EXlac  : LAC => LACext
EXsucc : SUCC => SUCCext
)";

}  // namespace

const char* ecoli_core_text() { return kEcoliCore; }

Network ecoli_core() { return parse_network(kEcoliCore); }

}  // namespace elmo::models
