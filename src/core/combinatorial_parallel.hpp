// Algorithm 2: the combinatorial parallel Nullspace Algorithm.
//
// Distributed-memory parallelisation of Algorithm 1 (Jevremovic et al.,
// TR 10-028; paper §II.D): every rank holds a replica of the current
// nullspace matrix; each iteration's positive x negative candidate pair
// space is sliced contiguously across ranks; each rank generates, dedups
// and rank-tests its slice locally, then an all-gather exchanges the
// accepted candidates and every rank rebuilds the identical next matrix
// (Communicate&Merge).  The full-replication design is the algorithm's
// documented weakness — per-rank memory grows with the matrix — which the
// per-rank memory budget surfaces exactly as on the paper's Network II run
// (abandoned at iteration 59).
#pragma once

#include <optional>

#include "check/check.hpp"
#include "mpsim/communicator.hpp"
#include "mpsim/serialize.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/modular_rank.hpp"
#include "nullspace/pairgen.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/rank_test.hpp"
#include "nullspace/solver.hpp"
#include "nullspace/sparse_rank.hpp"
#include "nullspace/spill.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "resource/governor.hpp"
#include "resource/shutdown.hpp"
#include "resource/watchdog.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace elmo {

struct ParallelOptions {
  /// Number of simulated compute ranks (the paper's "# nodes").
  int num_ranks = 4;
  /// Shared-memory workers per rank — Blue Gene/P's SMP (1 process + 3
  /// threads) and dual modes, and the Xeon nodes' "cores per node" column
  /// of Table II.  Each rank splits its pair slice across this many
  /// threads; candidates are merged and deduped rank-locally before the
  /// all-gather.
  int threads_per_rank = 1;
  SolverOptions solver;
  /// Per-rank memory budget in bytes (0 = unlimited).  Exceeding it throws
  /// MemoryBudgetError out of solve_combinatorial_parallel.
  std::size_t memory_budget_per_rank = 0;
  /// Optional deterministic fault injection (crashes, corruption, drops,
  /// stragglers) applied to the simulated world; see mpsim/fault.hpp.
  std::shared_ptr<mpsim::FaultPlan> fault_plan;
  /// Watchdog supervision of this world: soft deadline emits a straggler
  /// diagnosis, hard deadline / stall aborts the run with
  /// DeadlineExceededError (the combined driver re-queues with a split).
  resource::Deadlines deadlines;
};

template <typename Scalar, typename Support>
struct ParallelSolveResult {
  std::vector<FluxColumn<Scalar, Support>> columns;
  SolveStats stats;
  mpsim::RunReport ranks;
  /// Each rank's own ledger (slice-local counters and phase times), for
  /// per-rank run reports.  per_rank[r] belongs to simulated rank r.
  std::vector<SolveStats> per_rank;
};

template <typename Scalar, typename Support>
ParallelSolveResult<Scalar, Support> solve_combinatorial_parallel(
    const EfmProblem<Scalar>& problem, const ParallelOptions& options) {
  const int num_ranks = options.num_ranks;
  ELMO_REQUIRE(num_ranks >= 1, "num_ranks must be positive");

  // Deterministic preprocessing, done once (every rank would compute the
  // identical result; doing it outside the world keeps startup honest to
  // measure but costs nothing extra).
  auto prepared = prepare_problem(problem);
  SolverOptions solver_options = options.solver;
  if (prepared.has_splits()) {
    // If a divide-and-conquer caller excluded a row that got split, its
    // backward copy must stay unprocessed too (Proposition 1 needs the
    // reaction's full flux untouched).
    for (std::size_t k = 0; k < prepared.backward_of.size(); ++k) {
      for (std::size_t row : options.solver.exclude_rows) {
        if (prepared.backward_of[k] == row) {
          solver_options.exclude_rows.push_back(
              prepared.original_reactions + k);
        }
      }
    }
  }

  // Per-rank outputs (distinct slots; no locking needed).
  std::vector<SolveStats> rank_stats(static_cast<std::size_t>(num_ranks));
  std::optional<std::vector<FluxColumn<Scalar, Support>>> final_columns;
  SolveStats merged_stats;  // rank 0's view of merged quantities

  const int threads_per_rank = std::max(options.threads_per_rank, 1);

  auto body = [&](mpsim::Communicator& comm) {
    const int rank = comm.rank();
    SolveStats& stats = rank_stats[static_cast<std::size_t>(rank)];
    // Rank 0's per-iteration rows carry the GLOBAL accepted count and
    // matrix width (its slice-local counters stay slice-local); the run
    // report plots the column-growth curve from them.
    stats.keep_history = solver_options.record_history && rank == 0;
    auto basis = compute_initial_basis<Scalar, Support>(
        prepared.problem, solver_options.ordering,
        solver_options.exclude_rows);
    stats.peak_columns = basis.columns.size();
    // Per-thread testers: the testers carry scratch buffers and are not
    // shareable across the rank's shared-memory workers.
    std::vector<RankTester<Scalar>> exact_testers(
        static_cast<std::size_t>(threads_per_rank),
        RankTester<Scalar>(prepared.problem.stoichiometry));
    std::vector<ModularRankTester<Scalar>> modular_testers;
    std::vector<SparseRankTester<Scalar>> sparse_testers;
    bool use_modular = false;
    bool use_sparse = false;
    if constexpr (!std::is_same_v<Scalar, double>) {
      if (solver_options.test == ElementarityTest::kRank) {
        if (solver_options.rank_backend == RankTestBackend::kSparse) {
          for (int t = 0; t < threads_per_rank; ++t)
            sparse_testers.emplace_back(prepared.problem.stoichiometry,
                                        basis.columns);
          use_sparse = true;
        } else if (solver_options.rank_backend == RankTestBackend::kModular) {
          for (int t = 0; t < threads_per_rank; ++t)
            modular_testers.emplace_back(prepared.problem.stoichiometry,
                                         basis.columns);
          use_modular = true;
        }
      }
    }
    std::optional<ThreadPool> pool;
    if (threads_per_rank > 1)
      pool.emplace(static_cast<std::size_t>(threads_per_rank));
    auto columns = std::move(basis.columns);

    // Every rank's matrix replica is a real allocation in this process:
    // each charges the process-wide governor so --mem-limit sees the
    // paper's full-replication cost (num_ranks x matrix).
    auto& governor = resource::MemoryGovernor::global();
    resource::MemoryLease matrix_lease(resource::Subsystem::kMatrix);
    matrix_lease.set(matrix_storage_bytes(columns));

    for (std::size_t row : basis.processing_order) {
      resource::throw_if_shutdown_requested(
          "parallel iteration (rank " + std::to_string(rank) + ", row " +
          std::to_string(row) + ")");
      if (!solver_options.ignore_mem_limit)
        governor.enforce_resident("parallel iteration (rank " +
                                  std::to_string(rank) + ", row " +
                                  std::to_string(row) + ")");
      obs::TraceSpan iteration_span(
          "iteration", "solve",
          obs::trace() != nullptr ? "row " + std::to_string(row)
                                  : std::string());
      IterationStats iteration;
      iteration.row = row;
      auto cls = classify_row(columns, row);
      iteration.positives = cls.positive.size();
      iteration.negatives = cls.negative.size();

      // ParallelGenerateEFMCands + local Sort&RemoveDuplicates + local
      // RankTests, over this rank's contiguous pair slice, in
      // bounded-memory blocks.  The algebraic rank test is per-candidate
      // local — that is what makes Algorithm 2's distribution work.  The
      // combinatorial subset test, by contrast, needs the GLOBAL candidate
      // set and therefore runs after the merge below; its per-candidate
      // oracle here accepts everything.
      PairRange slice = pair_slice(cls.pair_count(), rank, num_ranks);
      const bool defer_test =
          solver_options.test == ElementarityTest::kCombinatorial;
      if (use_sparse) {
        // The matrix is replicated, so the iteration's common zero rows
        // are rank-global; each thread's tester caches the same block.
        const auto common = iteration_common_zero_rows(
            columns, cls.positive, cls.negative, row);
        for (auto& tester : sparse_testers) tester.begin_iteration(common);
      }
      auto make_oracle = [&](int thread) {
        return [&, thread](const Support& support) -> bool {
          if (defer_test) return true;
          if (use_sparse)
            return sparse_testers[static_cast<std::size_t>(thread)]
                .is_elementary(support);
          if (use_modular)
            return modular_testers[static_cast<std::size_t>(thread)]
                .is_elementary(support);
          return exact_testers[static_cast<std::size_t>(thread)]
              .is_elementary(support);
        };
      };
      std::vector<FluxColumn<Scalar, Support>> local;
      // Transient candidate charge for this iteration (the rank's own slice,
      // then additionally the gathered cross-rank set); released at scope
      // exit once everything merged into the matrix replica.
      resource::MemoryLease candidate_lease(resource::Subsystem::kCandidates);
      // Out-of-core fallback for the single-thread rank path: SMP workers
      // keep their thread-local slices in memory (their merge already
      // bounds them), so spill applies where the transient actually
      // accumulates.  Like the serial solver, every governed iteration
      // routes through the chunked driver; disk traffic is decided per
      // chunk from the live headroom.
      const bool spill_iteration =
          solver_options.spill.always ||
          (solver_options.spill.enabled && !solver_options.ignore_mem_limit &&
           governor.enabled());
      if (threads_per_rank == 1 && spill_iteration) {
        iteration.spilled_bytes = process_pair_range_spilled(
            columns, row, cls, basis.stoichiometry_rank, slice.begin,
            slice.end, solver_options.block_ref_cap, make_oracle(0),
            iteration, stats.phases, local, solver_options.spill);
      } else if (threads_per_rank == 1) {
        process_pair_range(columns, row, cls, basis.stoichiometry_rank,
                           slice.begin, slice.end,
                           solver_options.block_ref_cap, make_oracle(0),
                           iteration, stats.phases, local);
      }
      if (threads_per_rank == 1 && use_sparse)
        sparse_testers[0].drain_stats(iteration);
      if (threads_per_rank > 1) {
        // SMP mode: workers steal adaptive batches of this rank's slice
        // off a shared cursor (survivor density is wildly skewed across
        // the pair space; the static per-thread sub-slices this replaces
        // idled every worker but the unluckiest), all probing against one
        // shared set of per-iteration engine tables.  Thread-local results
        // are merged + deduped exactly like the cross-rank merge (distinct
        // batches can still produce the same candidate).
        PairGenTables<Scalar, Support> tables(
            columns, row, cls.positive, cls.negative, cls.zero,
            basis.stoichiometry_rank);
        std::vector<IterationStats> thread_stats(
            static_cast<std::size_t>(threads_per_rank));
        std::vector<PhaseTimer> thread_phases(
            static_cast<std::size_t>(threads_per_rank));
        std::vector<std::vector<FluxColumn<Scalar, Support>>> thread_local_(
            static_cast<std::size_t>(threads_per_rank));
        // Batches small enough to balance a skewed tail, large enough that
        // the per-batch engine setup (a cursor, no tables) stays noise.
        constexpr std::uint64_t kMinGrain = 4096;
        parallel_for_dynamic(
            *pool, slice.count(), kMinGrain,
            [&](int t, std::uint64_t sub_begin, std::uint64_t sub_end) {
              auto st = static_cast<std::size_t>(t);
              process_pair_range(columns, row, cls, basis.stoichiometry_rank,
                                 slice.begin + sub_begin,
                                 slice.begin + sub_end,
                                 solver_options.block_ref_cap, make_oracle(t),
                                 thread_stats[st], thread_phases[st],
                                 thread_local_[st], &tables);
            });
        PhaseTimer slowest_worker;  // per-iteration max across threads
        for (int t = 0; t < threads_per_rank; ++t) {
          auto st = static_cast<std::size_t>(t);
          if (use_sparse)
            sparse_testers[st].drain_stats(thread_stats[st]);
          iteration.pairs_probed += thread_stats[st].pairs_probed;
          iteration.pairs_pruned += thread_stats[st].pairs_pruned;
          iteration.pretest_survivors += thread_stats[st].pretest_survivors;
          iteration.rank_tests += thread_stats[st].rank_tests;
          iteration.rank_sparse_hits += thread_stats[st].rank_sparse_hits;
          iteration.rank_warmstart_reuses +=
              thread_stats[st].rank_warmstart_reuses;
          iteration.rank_dense_fallbacks +=
              thread_stats[st].rank_dense_fallbacks;
          iteration.rank_gathered_nnz += thread_stats[st].rank_gathered_nnz;
          iteration.duplicates_removed +=
              thread_stats[st].duplicates_removed;
          slowest_worker.merge_max(thread_phases[st]);
          local.insert(local.end(),
                       std::make_move_iterator(thread_local_[st].begin()),
                       std::make_move_iterator(thread_local_[st].end()));
        }
        // Wall-clock: threads run concurrently, so this iteration costs
        // the slowest worker's time; accumulate that into the rank totals.
        stats.phases.merge(slowest_worker);
        ScopedPhase phase(stats.phases, Phase::kMerge);
        sort_and_dedup(local, iteration);
      }
      candidate_lease.set(matrix_storage_bytes(local));
      if (solver_options.audit) {
        check::InvariantAuditor auditor;
        // pair-conservation: rank slices must partition the global pair
        // set — an all-reduce over slice-local probed counts has to land
        // exactly on positives x negatives.  (Collective: every rank
        // participates, every rank verifies the same sum.)
        const std::uint64_t world_pairs =
            comm.all_reduce_sum(iteration.pairs_probed);
        auditor.check_pair_conservation(
            world_pairs, cls.pair_count(),
            "solve_combinatorial_parallel row " + std::to_string(row));
        if (solver_options.test == ElementarityTest::kRank) {
          // rank-nullity: re-verify this rank's accepted slice with the
          // exact backend before it enters the all-gather.
          auditor.check_rank_nullity(
              exact_testers[0], local,
              "solve_combinatorial_parallel rank " + std::to_string(rank) +
                  " row " + std::to_string(row));
        }
      }
      // Communicate&Merge: exchange accepted candidates, rebuild the
      // replicated next matrix identically on every rank.
      std::vector<FluxColumn<Scalar, Support>> accepted;
      {
        ScopedPhase phase(stats.phases, Phase::kCommunicate);
        auto batches = comm.all_gather(mpsim::encode_columns(local));
        for (const auto& batch : batches) {
          auto incoming = mpsim::decode_columns<Scalar, Support>(batch);
          accepted.insert(accepted.end(),
                          std::make_move_iterator(incoming.begin()),
                          std::make_move_iterator(incoming.end()));
        }
      }
      candidate_lease.set(matrix_storage_bytes(local) +
                          matrix_storage_bytes(accepted));
      IterationStats merge_iteration;  // merged quantities, counted once
      {
        ScopedPhase phase(stats.phases, Phase::kMerge);
        // Cross-rank duplicates: different pairs on different ranks can
        // produce the same candidate.
        sort_and_dedup(accepted, merge_iteration);
      }
      if (solver_options.test == ElementarityTest::kCombinatorial) {
        ScopedPhase test_phase(stats.phases, Phase::kRankTest);
        combinatorial_filter(columns, cls, prepared.problem.reversible[row],
                             accepted, merge_iteration);
      }
      {
        ScopedPhase phase(stats.phases, Phase::kMerge);
        merge_iteration.accepted = accepted.size();
        columns = merge_next(std::move(columns), cls,
                             prepared.problem.reversible[row],
                             std::move(accepted));
      }
      iteration.columns_after = columns.size();
      const std::size_t matrix_bytes = matrix_storage_bytes(columns);
      matrix_lease.set(matrix_bytes);
      stats.peak_matrix_bytes = std::max(stats.peak_matrix_bytes, matrix_bytes);
      // Rank 0 records the globally merged accepted count on its iteration
      // row (process_pair_range left the slice-local pre-dedup count
      // there), so history plots the true growth.  Harmless for the
      // aggregate below: total_accepted is overwritten from the ledger.
      if (rank == 0) iteration.accepted = merge_iteration.accepted;
      stats.absorb(iteration);
      // History rows plot GLOBAL quantities: patch the pair count from rank
      // 0's slice to the full pair set of this row (the matrix is
      // replicated, so positives x negatives is known locally).  Slices
      // partition the pair set, so summing these rows reproduces the
      // aggregated total_pairs_probed exactly.  Done after absorb() so the
      // rank totals keep their slice-local sums.
      if (stats.keep_history && rank == 0) {
        stats.history.back().pairs_probed = cls.pair_count();
      }
      // Metrics must count global quantities once: only rank 0 publishes
      // accepted (merged) and it adds the cross-rank duplicates on top of
      // its slice-local ones; other ranks publish 0 for both.
      IterationStats published = iteration;
      if (rank == 0) {
        published.duplicates_removed += merge_iteration.duplicates_removed;
      } else {
        published.accepted = 0;
      }
      publish_iteration_metrics(published);
      if (rank == 0) obs::trace_counter("columns", iteration.columns_after);
      // The merged candidate count and cross-rank duplicates are global
      // quantities; fold them into rank 0's ledger only.
      if (rank == 0) {
        // analyze:shared-ok — only rank 0 touches the spawner-frame ledger.
        merged_stats.total_accepted += merge_iteration.accepted;
        // analyze:shared-ok
        merged_stats.total_duplicates_removed +=
            merge_iteration.duplicates_removed;
      }
      // Memory accounting against the simulated per-rank budget.
      comm.set_memory_usage(stats.peak_matrix_bytes);
      if (solver_options.audit && rank == 0) {
        // The next matrix is replicated, so auditing S*R = 0 on one rank
        // covers the world.
        check::InvariantAuditor{}.check_nullspace_product(
            prepared.problem.stoichiometry, columns,
            "solve_combinatorial_parallel after row " + std::to_string(row));
      }
      if (options.solver.on_iteration && rank == 0) {
        options.solver.on_iteration(iteration);
      }
    }
    if (solver_options.audit && rank == 0 &&
        options.solver.exclude_rows.empty()) {
      check::InvariantAuditor{}.check_support_minimality(
          columns, "solve_combinatorial_parallel final");
    }
    if (rank == 0) {
      // Rank 0 is the only writer; run_ranks joins every thread before
      // the spawner reads it.  analyze:shared-ok
      final_columns =
          unsplit_columns(std::move(columns), prepared);
    }
  };

  mpsim::RunOptions run_options;
  run_options.memory_budget_per_rank = options.memory_budget_per_rank;
  run_options.fault_plan = options.fault_plan;
  run_options.deadlines = options.deadlines;
  auto report = mpsim::run_ranks(num_ranks, body, run_options);

  ParallelSolveResult<Scalar, Support> result;
  ELMO_CHECK(final_columns.has_value(), "rank 0 produced no result");
  result.columns = std::move(*final_columns);
  result.ranks = std::move(report);
  // Aggregate: slice-local counters sum across ranks; merged counters were
  // recorded once; phase times take the slowest rank (the paper reports
  // the critical path); accepted counts come from the merge ledger.
  for (const auto& stats : rank_stats) {
    result.stats.total_pairs_probed += stats.total_pairs_probed;
    result.stats.total_pretest_survivors += stats.total_pretest_survivors;
    result.stats.total_rank_tests += stats.total_rank_tests;
    result.stats.total_duplicates_removed += stats.total_duplicates_removed;
    result.stats.peak_columns =
        std::max(result.stats.peak_columns, stats.peak_columns);
    result.stats.peak_matrix_bytes =
        std::max(result.stats.peak_matrix_bytes, stats.peak_matrix_bytes);
    result.stats.phases.merge_max(stats.phases);
  }
  result.stats.iterations = rank_stats.empty()
                                ? 0
                                : rank_stats.front().iterations;
  result.stats.total_accepted = merged_stats.total_accepted;
  result.stats.total_duplicates_removed +=
      merged_stats.total_duplicates_removed;
  if (!rank_stats.empty() && rank_stats.front().keep_history) {
    result.stats.keep_history = true;
    result.stats.history = rank_stats.front().history;
  }
  result.per_rank = std::move(rank_stats);
  return result;
}

}  // namespace elmo
