# Empty compiler generated dependencies file for bench_micro_candidates.
# This may be replaced when dependencies are built.
