file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qsub.dir/bench_ablation_qsub.cpp.o"
  "CMakeFiles/bench_ablation_qsub.dir/bench_ablation_qsub.cpp.o.d"
  "bench_ablation_qsub"
  "bench_ablation_qsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
