# Empty compiler generated dependencies file for elmo_cli.
# This may be replaced when dependencies are built.
