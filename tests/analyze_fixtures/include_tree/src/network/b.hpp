// Seeds include:cycle (with a.hpp).
#pragma once

#include "network/a.hpp"

struct BThing {
  int b = 0;
};

inline int use_a_from_b() { return AThing{}.a; }
