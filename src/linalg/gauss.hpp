// Exact Gaussian elimination algorithms.
//
//  * rref             - Gauss-Jordan over a field scalar (Rational), with a
//                       caller-supplied column pivot order so the caller
//                       controls which variables end up free.
//  * rank_bareiss     - fraction-free (Bareiss) elimination over an integer
//                       scalar; exact rank without rationals.  This is the
//                       workhorse of the algebraic rank test.
//  * nullity          - cols - rank; the rank test accepts a candidate flux
//                       mode iff the nullity of its support submatrix is 1.
#pragma once

#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "support/assert.hpp"

namespace elmo {

/// Result of reduced row echelon form.
struct RrefResult {
  /// pivot_cols[i] is the pivot column of row i; size == rank.
  std::vector<std::size_t> pivot_cols;
  [[nodiscard]] std::size_t rank() const { return pivot_cols.size(); }
};

/// In-place reduced row echelon form over a field scalar.
///
/// Columns are considered for pivoting in the order given by `col_order`
/// (every column index exactly once); a column becomes a pivot iff some
/// not-yet-pivoted row has a nonzero entry there.  Rows end up permuted so
/// that row i holds pivot i.
template <typename Field>
RrefResult rref(Matrix<Field>& a, const std::vector<std::size_t>& col_order) {
  ELMO_REQUIRE(col_order.size() == a.cols(),
               "rref: col_order must cover every column");
  RrefResult result;
  std::size_t next_row = 0;
  for (std::size_t col : col_order) {
    if (next_row >= a.rows()) break;
    // Find a pivot row at or below next_row.
    std::size_t pivot_row = next_row;
    while (pivot_row < a.rows() && scalar_is_zero(a(pivot_row, col)))
      ++pivot_row;
    if (pivot_row == a.rows()) continue;
    a.swap_rows(next_row, pivot_row);

    // Normalise the pivot row.
    Field inv = scalar_from_i64<Field>(1);
    inv /= a(next_row, col);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!scalar_is_zero(a(next_row, j))) a(next_row, j) *= inv;
    }

    // Eliminate the column everywhere else.
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (i == next_row || scalar_is_zero(a(i, col))) continue;
      Field factor = a(i, col);
      for (std::size_t j = 0; j < a.cols(); ++j) {
        if (scalar_is_zero(a(next_row, j))) continue;
        a(i, j) -= factor * a(next_row, j);
      }
    }
    result.pivot_cols.push_back(col);
    ++next_row;
  }
  return result;
}

/// rref with the natural column order 0..cols-1.
template <typename Field>
RrefResult rref(Matrix<Field>& a) {
  std::vector<std::size_t> order(a.cols());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  return rref(a, order);
}

/// Exact matrix rank via fraction-free (Bareiss) elimination.
///
/// Works on a copy; Int must be an exact integer scalar (CheckedI64 throws
/// OverflowError if intermediate minors exceed 64 bits — callers retry with
/// BigInt).  Double is also accepted, in which case the zero tests are
/// tolerance-based and the result is a numerical rank.
template <typename Int>
std::size_t rank_bareiss(Matrix<Int> a) {
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::size_t rank = 0;
  Int prev_pivot = scalar_from_i64<Int>(1);
  std::size_t pivot_col = 0;
  for (std::size_t step = 0; step < rows && pivot_col < cols; ++pivot_col) {
    // Find a nonzero pivot in this column at or below `step`.
    std::size_t pivot_row = step;
    while (pivot_row < rows && scalar_is_zero(a(pivot_row, pivot_col)))
      ++pivot_row;
    if (pivot_row == rows) continue;
    a.swap_rows(step, pivot_row);

    const Int pivot = a(step, pivot_col);
    for (std::size_t i = step + 1; i < rows; ++i) {
      const Int factor = a(i, pivot_col);
      for (std::size_t j = pivot_col + 1; j < cols; ++j) {
        // Bareiss update: exact division by the previous pivot.
        Int value = pivot * a(i, j) - factor * a(step, j);
        a(i, j) = scalar_exact_div(std::move(value), prev_pivot);
      }
      a(i, pivot_col) = scalar_from_i64<Int>(0);
    }
    prev_pivot = pivot;
    ++rank;
    ++step;
  }
  return rank;
}

/// Dimension of the right nullspace: cols - rank.
template <typename Int>
std::size_t nullity(const Matrix<Int>& a) {
  return a.cols() - rank_bareiss(a);
}

/// Kernel (right nullspace) basis of an exact matrix, in the (I; R2) shape
/// the Nullspace Algorithm starts from.
///
/// Returned as a pair:
///   * basis: q x (q - rank) matrix over Field whose columns span null(a);
///     rows are in the ORIGINAL column (reaction) order of `a`.
///   * free_cols: the columns of `a` (reactions) that are free variables —
///     basis restricted to these rows is the identity.  These are the
///     "identity part" rows the algorithm never needs to process.
///
/// `col_order` controls pivoting preference exactly as in rref(): columns
/// late in the order are more likely to end up free.
template <typename Field>
std::pair<Matrix<Field>, std::vector<std::size_t>> nullspace_basis(
    const Matrix<Field>& a, const std::vector<std::size_t>& col_order) {
  Matrix<Field> r = a;
  RrefResult echelon = rref(r, col_order);

  std::vector<bool> is_pivot(a.cols(), false);
  for (std::size_t col : echelon.pivot_cols) is_pivot[col] = true;
  std::vector<std::size_t> free_cols;
  for (std::size_t j = 0; j < a.cols(); ++j)
    if (!is_pivot[j]) free_cols.push_back(j);

  Matrix<Field> basis(a.cols(), free_cols.size());
  for (std::size_t k = 0; k < free_cols.size(); ++k) {
    const std::size_t f = free_cols[k];
    basis(f, k) = scalar_from_i64<Field>(1);
    // x[pivot_i] = -r(i, f) for each pivot row i.
    for (std::size_t i = 0; i < echelon.pivot_cols.size(); ++i) {
      if (!scalar_is_zero(r(i, f)))
        basis(echelon.pivot_cols[i], k) = -r(i, f);
    }
  }
  return {std::move(basis), std::move(free_cols)};
}

template <typename Field>
std::pair<Matrix<Field>, std::vector<std::size_t>> nullspace_basis(
    const Matrix<Field>& a) {
  std::vector<std::size_t> order(a.cols());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  return nullspace_basis(a, order);
}

}  // namespace elmo
