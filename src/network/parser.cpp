#include "network/parser.hpp"

#include <cctype>
#include <set>
#include <sstream>
#include <vector>

#include "network/network.hpp"
#include "support/error.hpp"

namespace elmo {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw ParseError("line " + std::to_string(line_no) + ": " + message);
}

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Remove "#"- or "//"-style trailing comments.
std::string_view strip_comment(std::string_view s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '#' || (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/'))
      return s.substr(0, i);
  }
  return s;
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '\'' || c == '(' || c == ')' || c == '[' || c == ']';
}

struct Term {
  std::int64_t coefficient;
  std::string metabolite;
};

/// Parse one side of a reaction: "7437 G6P + 611 G3P" -> terms.
std::vector<Term> parse_side(std::string_view side, std::size_t line_no) {
  std::vector<Term> terms;
  side = strip(side);
  if (side.empty()) return terms;  // pure import/export side

  std::size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < side.size() &&
           std::isspace(static_cast<unsigned char>(side[pos])))
      ++pos;
  };
  while (true) {
    skip_ws();
    // Optional integer coefficient.
    std::int64_t coeff = 1;
    if (pos < side.size() &&
        std::isdigit(static_cast<unsigned char>(side[pos]))) {
      std::size_t start = pos;
      while (pos < side.size() &&
             std::isdigit(static_cast<unsigned char>(side[pos])))
        ++pos;
      // A bare number followed by a name char (e.g. "2NADH") is treated as
      // part of the name only if no whitespace separates them and the name
      // starts with a letter — the paper always separates, so require a gap.
      coeff = std::stoll(std::string(side.substr(start, pos - start)));
      skip_ws();
    }
    // Metabolite name.
    std::size_t start = pos;
    while (pos < side.size() && is_name_char(side[pos])) ++pos;
    if (pos == start) fail(line_no, "expected metabolite name");
    terms.push_back(Term{coeff, std::string(side.substr(start, pos - start))});
    skip_ws();
    if (pos == side.size()) break;
    if (side[pos] != '+') fail(line_no, "expected '+' between terms");
    ++pos;
  }
  return terms;
}

}  // namespace

Network parse_network(std::string_view text, const ParserOptions& options) {
  // First pass: collect explicit external declarations and reaction lines.
  struct ReactionLine {
    std::size_t line_no;
    std::string name;
    bool reversible;
    std::vector<Term> lhs;
    std::vector<Term> rhs;
  };
  std::set<std::string> declared_external;
  std::vector<ReactionLine> reaction_lines;
  std::vector<std::string> declared_internal_order;
  std::set<std::string> declared_internal;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = strip(strip_comment(text.substr(start, end - start)));
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    // Directive lines.
    if (line.starts_with("external ") || line == "external") {
      std::istringstream words{std::string(line.substr(8))};
      std::string word;
      while (words >> word) declared_external.insert(word);
      continue;
    }
    if (line.starts_with("metabolite ") || line == "metabolite") {
      std::istringstream words{std::string(line.substr(10))};
      std::string word;
      while (words >> word) {
        if (declared_internal.insert(word).second)
          declared_internal_order.push_back(word);
      }
      continue;
    }

    // Reaction line: NAME : LHS (=>|<=>) RHS
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos)
      fail(line_no, "expected 'NAME : equation'");
    std::string name{strip(line.substr(0, colon))};
    if (name.empty()) fail(line_no, "empty reaction name");
    std::string_view equation = line.substr(colon + 1);

    bool reversible = false;
    std::size_t arrow = equation.find("<=>");
    std::size_t arrow_len = 3;
    if (arrow != std::string_view::npos) {
      reversible = true;
    } else {
      arrow = equation.find("=>");
      arrow_len = 2;
      if (arrow == std::string_view::npos)
        fail(line_no, "expected '=>' or '<=>' in equation");
    }
    ReactionLine parsed;
    parsed.line_no = line_no;
    parsed.name = std::move(name);
    parsed.reversible = reversible;
    parsed.lhs = parse_side(equation.substr(0, arrow), line_no);
    parsed.rhs = parse_side(equation.substr(arrow + arrow_len), line_no);
    if (parsed.lhs.empty() && parsed.rhs.empty())
      fail(line_no, "reaction with both sides empty");
    reaction_lines.push_back(std::move(parsed));
  }

  // Second pass: build the network.  Metabolite ids follow declaration
  // order, then first-use order within the reaction list.
  Network network;
  auto ensure_metabolite = [&](const std::string& met) {
    if (network.find_metabolite(met)) return;
    bool external =
        declared_external.contains(met) ||
        (!options.external_suffix.empty() &&
         met.size() > options.external_suffix.size() &&
         met.ends_with(options.external_suffix) &&
         !declared_internal.contains(met));
    network.add_metabolite(met, external);
  };
  for (const auto& met : declared_internal_order) ensure_metabolite(met);
  for (const auto& met : declared_external) ensure_metabolite(met);
  for (const auto& line : reaction_lines) {
    for (const auto& term : line.lhs) ensure_metabolite(term.metabolite);
    for (const auto& term : line.rhs) ensure_metabolite(term.metabolite);
  }

  for (const auto& line : reaction_lines) {
    std::vector<std::pair<std::string, std::int64_t>> terms;
    terms.reserve(line.lhs.size() + line.rhs.size());
    for (const auto& term : line.lhs)
      terms.emplace_back(term.metabolite, -term.coefficient);
    for (const auto& term : line.rhs)
      terms.emplace_back(term.metabolite, term.coefficient);
    try {
      network.add_reaction(line.name, line.reversible, terms);
    } catch (const InvalidArgumentError& e) {
      fail(line.line_no, e.what());
    }
  }
  return network;
}

std::string write_network(const Network& network) {
  std::ostringstream os;
  // Externals that the suffix rule would not recover must be declared.
  std::vector<std::string> externals;
  for (const auto& met : network.metabolites())
    if (met.external) externals.push_back(met.name);
  if (!externals.empty()) {
    os << "external";
    for (const auto& name : externals) os << ' ' << name;
    os << '\n';
  }
  // Declare every internal metabolite explicitly, in id order.  This both
  // overrides the "ext" suffix rule where needed and guarantees that
  // re-parsing reproduces the same stoichiometry row order.
  bool any_internal = false;
  for (const auto& met : network.metabolites()) {
    if (met.external) continue;
    if (!any_internal) os << "metabolite";
    any_internal = true;
    os << ' ' << met.name;
  }
  if (any_internal) os << '\n';

  for (const auto& reaction : network.reactions()) {
    os << reaction.name << " : ";
    bool first = true;
    for (const auto& term : reaction.terms) {
      if (term.coefficient >= 0) continue;
      if (!first) os << " + ";
      first = false;
      if (term.coefficient != -1) os << -term.coefficient << ' ';
      os << network.metabolite(term.metabolite).name;
    }
    os << (reaction.reversible ? " <=> " : " => ");
    first = true;
    for (const auto& term : reaction.terms) {
      if (term.coefficient <= 0) continue;
      if (!first) os << " + ";
      first = false;
      if (term.coefficient != 1) os << term.coefficient << ' ';
      os << network.metabolite(term.metabolite).name;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace elmo
