// End-to-end tests for tools/elmo_analyze: every pass must trip on its
// seeded fixture (tests/analyze_fixtures/) and stay silent on the clean
// counterparts, with the --json reports matching the committed goldens
// byte-for-byte.  The lock-discipline test is the full static-vs-runtime
// diff: the runtime edge dump is produced in-process by the real
// elmo::check::LockOrderGraph, then handed to the analyzer, proving the
// two lockdep graphs speak the same format.  Finally the analyzer runs
// over this repository's own src/ against the committed baseline — the
// tree must be clean.
//
// The analyzer binaries are spawned via std::system; paths arrive as
// compile definitions (ANALYZE_BIN, LINT_BIN, FIXTURES_DIR, SOURCE_ROOT).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "check/lockorder.hpp"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // merged stdout+stderr
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Run `cmd` with cwd `dir`, capturing merged output; returns the child's
/// exit status (not the raw std::system encoding).
RunResult run_in(const std::string& dir, const std::string& cmd) {
  const std::string out_path = ::testing::TempDir() + "analyze_out.txt";
  const std::string full =
      "cd '" + dir + "' && " + cmd + " > '" + out_path + "' 2>&1";
  const int raw = std::system(full.c_str());
  RunResult result;
  result.output = slurp(out_path);
#if defined(WIFEXITED)
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
#else
  result.exit_code = raw;
#endif
  return result;
}

const std::string kBin = ANALYZE_BIN;
const std::string kLintBin = LINT_BIN;
const std::string kFixtures = FIXTURES_DIR;
const std::string kSourceRoot = SOURCE_ROOT;

TEST(AnalyzeInclude, SeededTreeMatchesGolden) {
  const std::string json = ::testing::TempDir() + "include_tree.json";
  RunResult r = run_in(kFixtures, kBin +
                                      " --pass=include --root=include_tree"
                                      " --json=" +
                                      json);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // One seeded violation per rule.
  for (const char* rule :
       {"pragma-once", "self-contained", "missing-include", "unused-include",
        "facade", "cycle", "layering"}) {
    EXPECT_NE(r.output.find(std::string("[include:") + rule + "]"),
              std::string::npos)
        << "rule did not fire: " << rule << "\n"
        << r.output;
  }
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/include_tree.json"));
}

TEST(AnalyzeInclude, ModuleGraphDotDump) {
  const std::string dot = ::testing::TempDir() + "modules.dot";
  RunResult r = run_in(
      kFixtures,
      kBin + " --pass=include --root=include_tree --dot=" + dot);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string graph = slurp(dot);
  EXPECT_NE(graph.find("digraph"), std::string::npos);
  EXPECT_NE(graph.find("nullspace"), std::string::npos);
}

TEST(AnalyzeLock, DiffsStaticGraphAgainstRuntimeLockdep) {
  // Exercise ONE of the two statically-possible orders through the real
  // runtime lockdep recorder, exactly as instrumented code would.
  auto& graph = elmo::check::LockOrderGraph::global();
  graph.reset();
  graph.on_acquire("fix.a");
  graph.on_acquire("fix.b");  // edge fix.a -> fix.b while holding fix.a
  graph.on_release("fix.b");
  graph.on_release("fix.a");
  const std::string edges_path = ::testing::TempDir() + "runtime_edges.txt";
  {
    std::ofstream out(edges_path);
    for (const std::string& edge : graph.edges()) out << edge << "\n";
  }
  graph.reset();
  ASSERT_NE(slurp(edges_path).find("fix.a -> fix.b"), std::string::npos);

  const std::string json = ::testing::TempDir() + "locks.json";
  RunResult r = run_in(kFixtures,
                       kBin +
                           " --pass=lock --lockdep-edges=" + edges_path +
                           " --json=" + json +
                           " locks/lock_cycle.cpp locks/lock_blocking.cpp"
                           " locks/lock_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The static graph sees both orders -> cycle; the runtime graph only saw
  // fix.a -> fix.b, so fix.b -> fix.a is a coverage hole.
  EXPECT_NE(r.output.find("[lock:lock-cycle]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fix.a -> fix.b -> fix.a"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[lock:lock-unexercised]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("fix.b -> fix.a"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[lock:lock-blocking]"), std::string::npos)
      << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/locks.json"));
}

TEST(AnalyzeLock, CleanFileStaysSilent) {
  RunResult r = run_in(kFixtures, kBin + " --pass=lock locks/lock_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(AnalyzeOverflow, SeededArithMatchesGolden) {
  const std::string json = ::testing::TempDir() + "overflow.json";
  RunResult r = run_in(kFixtures,
                       kBin +
                           " --pass=overflow --json=" + json +
                           " overflow/overflow_bad.cpp"
                           " overflow/overflow_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[overflow:unchecked-arith]"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("overflow_clean"), std::string::npos) << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/overflow.json"));
}

TEST(AnalyzeLint, SeededRulesMatchGolden) {
  const std::string json = ::testing::TempDir() + "lint.json";
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=lint --json=" + json +
                           " lint/lint_bad.cpp lint/lint_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule :
       {"naked-new", "no-rand", "catch-all", "reinterpret-cast"}) {
    EXPECT_NE(r.output.find(std::string("[lint:") + rule + "]"),
              std::string::npos)
        << "rule did not fire: " << rule << "\n"
        << r.output;
  }
  EXPECT_EQ(r.output.find("lint_clean"), std::string::npos) << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/lint.json"));
}

TEST(AnalyzeLint, ShimKeepsHistoricalInterface) {
  RunResult bad = run_in(kFixtures, kLintBin + " lint/lint_bad.cpp");
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  // Historical format: `file:line: [rule] message` + count trailer.
  EXPECT_NE(bad.output.find("lint/lint_bad.cpp:4: [naked-new]"),
            std::string::npos)
      << bad.output;
  EXPECT_NE(bad.output.find("elmo_lint: 4 finding(s)"), std::string::npos)
      << bad.output;

  RunResult clean = run_in(kFixtures, kLintBin + " lint/lint_clean.cpp");
  EXPECT_EQ(clean.exit_code, 0) << clean.output;

  RunResult usage = run_in(kFixtures, kLintBin);
  EXPECT_EQ(usage.exit_code, 2) << usage.output;
}

TEST(AnalyzeShared, SeededMutationsMatchGolden) {
  const std::string json = ::testing::TempDir() + "shared.json";
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=shared --json=" + json +
                           " shared/shared_bad.cpp shared/shared_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Every seeded mutation kind: member via ThreadPool::submit, global and
  // captured locals via parallel_for_dynamic, global via a thread vector.
  for (const char* site : {"'counter_'", "'g_total'", "'s_calls'", "'hits'"}) {
    EXPECT_NE(r.output.find(site), std::string::npos)
        << "site did not fire: " << site << "\n"
        << r.output;
  }
  EXPECT_EQ(r.output.find("shared_clean"), std::string::npos) << r.output;
  // Guarded/atomic/annotated sites in the bad file stay silent.
  EXPECT_EQ(r.output.find("g_atomic"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("'slots'"), std::string::npos) << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/shared.json"));
}

TEST(AnalyzeShared, CleanFileStaysSilent) {
  RunResult r =
      run_in(kFixtures, kBin + " --pass=shared shared/shared_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(AnalyzeShared, TsanLogCrossCheckFlagsUnseenRaces) {
  // Fabricate a TSan report with two race sites: one where the static
  // pass already fires (shared_bad.cpp:42) and one where it is silent
  // (shared_clean.cpp:26, guarded).  Only the second may become a
  // shared-unseen finding.
  const std::string log = ::testing::TempDir() + "tsan.log";
  {
    std::ofstream out(log);
    out << "WARNING: ThreadSanitizer: data race (pid=123)\n"
        << "  Write of size 8 at 0x7b04 by thread T1:\n"
        << "    #0 pump shared/shared_clean.cpp:26 (t+0x1)\n"
        << "  Previous write of size 8 by thread T2:\n"
        << "    #0 lanes shared/shared_bad.cpp:42 (t+0x2)\n"
        << "SUMMARY: ThreadSanitizer: data race shared/shared_clean.cpp:26\n";
  }
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=shared --tsan-log=" + log +
                           " shared/shared_bad.cpp shared/shared_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[shared:shared-unseen]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("shared_clean.cpp:26"), std::string::npos)
      << r.output;
  // The statically-seen race must not be double-reported as unseen.
  EXPECT_EQ(r.output.find("shared_bad.cpp:42: [shared:shared-unseen]"),
            std::string::npos)
      << r.output;
}

TEST(AnalyzeErrpath, SeededLeaksMatchGolden) {
  const std::string json = ::testing::TempDir() + "errpath.json";
  RunResult r =
      run_in(kFixtures, kBin + " --pass=errpath --json=" + json +
                            " errpath/errpath_bad.cpp errpath/errpath_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule : {"raii-pair", "unhandled-throw"}) {
    EXPECT_NE(r.output.find(std::string("[errpath:") + rule + "]"),
              std::string::npos)
        << "rule did not fire: " << rule << "\n"
        << r.output;
  }
  EXPECT_NE(r.output.find("ResourceError"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("CancelledError"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("errpath_clean"), std::string::npos) << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/errpath.json"));
}

TEST(AnalyzeErrpath, CleanFileStaysSilent) {
  RunResult r =
      run_in(kFixtures, kBin + " --pass=errpath errpath/errpath_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(AnalyzeDeterminism, SeededSourcesMatchGolden) {
  const std::string json = ::testing::TempDir() + "determinism.json";
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=determinism --json=" + json +
                           " determinism/determinism_bad.cpp"
                           " determinism/determinism_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule : {"pointer-key", "unordered-iter", "wall-clock"}) {
    EXPECT_NE(r.output.find(std::string("[determinism:") + rule + "]"),
              std::string::npos)
        << "rule did not fire: " << rule << "\n"
        << r.output;
  }
  EXPECT_EQ(r.output.find("determinism_clean"), std::string::npos) << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/determinism.json"));
}

TEST(AnalyzeDeterminism, CleanFileStaysSilent) {
  RunResult r = run_in(
      kFixtures, kBin + " --pass=determinism determinism/determinism_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(AnalyzeProtocol, SeededSkeletonsMatchGolden) {
  const std::string json = ::testing::TempDir() + "protocol.json";
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=protocol --json=" + json +
                           " protocol/protocol_bad.cpp"
                           " protocol/protocol_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule : {"tag-mismatch", "orphan-recv", "peer-mismatch",
                           "collective-divergence", "recv-before-send"}) {
    EXPECT_NE(r.output.find(std::string("[protocol:") + rule + "]"),
              std::string::npos)
        << "rule did not fire: " << rule << "\n"
        << r.output;
  }
  EXPECT_EQ(r.output.find("protocol_clean"), std::string::npos) << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/protocol.json"));
}

TEST(AnalyzeProtocol, CleanFileStaysSilent) {
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=protocol protocol/protocol_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(AnalyzeProtocol, FlowLogCrossCheckFlagsUnseenFlows) {
  // Fabricate a runtime trace in the PR-7 flow-event shape: a p2p flow
  // the static skeleton covers (tag 904 is sent in protocol_bad.cpp), a
  // p2p flow no send site can produce (tag 999), and a gather flow
  // (covered — the fixtures hold collective sites).  Only tag 999 may
  // become a flow-unseen finding.
  const std::string log = ::testing::TempDir() + "flow_trace.json";
  {
    std::ofstream out(log);
    out << "{\"traceEvents\":[{\"name\":\"msg\",\"cat\":\"mpsim\",\"ph\":"
           "\"s\",\"pid\":1,\"tid\":2,\"ts\":10,\"id\":7,\"args\":{"
           "\"detail\":\"src=0 dst=1 seq=1 bytes=64 tag=904\"}},"
           "{\"name\":\"msg\",\"cat\":\"mpsim\",\"ph\":\"f\",\"bp\":\"e\","
           "\"pid\":1,\"tid\":3,\"ts\":12,\"id\":7},"
           "{\"name\":\"msg\",\"cat\":\"mpsim\",\"ph\":\"s\",\"pid\":1,"
           "\"tid\":2,\"ts\":20,\"id\":8,\"args\":{\"detail\":\"src=0 "
           "dst=1 seq=2 bytes=64 tag=999\"}},"
           "{\"name\":\"gather\",\"cat\":\"mpsim\",\"ph\":\"s\",\"pid\":1,"
           "\"tid\":2,\"ts\":30,\"id\":9,\"args\":{\"detail\":\"src=0 "
           "round=1 bytes=128\"}}]}\n";
  }
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=protocol --flow-log=" + log +
                           " protocol/protocol_bad.cpp"
                           " protocol/protocol_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[protocol:flow-unseen]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("tag 999"), std::string::npos) << r.output;
  // The covered p2p flow and the covered gather flow stay silent.
  EXPECT_EQ(r.output.find("tag 904 but no static send site"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("no collective site"), std::string::npos)
      << r.output;
}

TEST(AnalyzeProtocol, MissingFlowLogIsAFinding) {
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=protocol --flow-log=/no/such/trace.json"
                              " protocol/protocol_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot read flow log"), std::string::npos)
      << r.output;
}

TEST(AnalyzeTypestate, SeededMachinesMatchGolden) {
  const std::string json = ::testing::TempDir() + "typestate.json";
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=typestate --json=" + json +
                           " typestate/typestate_bad.cpp"
                           " typestate/typestate_clean.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule :
       {"spill-write-after-read", "use-after-release",
        "warm-test-before-begin", "discarded-token", "repair-before-resume"}) {
    EXPECT_NE(r.output.find(std::string("[typestate:") + rule + "]"),
              std::string::npos)
        << "rule did not fire: " << rule << "\n"
        << r.output;
  }
  EXPECT_EQ(r.output.find("typestate_clean"), std::string::npos) << r.output;
  EXPECT_EQ(slurp(json), slurp(kFixtures + "/golden/typestate.json"));
}

TEST(AnalyzeTypestate, CleanFileStaysSilent) {
  // The clean corpus includes the range-for alias + subscripted receiver
  // shape and the lint:allow(discarded-token) escape.
  RunResult r = run_in(
      kFixtures, kBin + " --pass=typestate typestate/typestate_clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(AnalyzeSarif, EmitsSarifOnStdoutTextOnStderr) {
  // SARIF goes to stdout only; the text report stays on stderr, so the
  // merged capture contains both.
  RunResult r = run_in(kFixtures,
                       kBin + " --pass=overflow --format=sarif"
                              " overflow/overflow_bad.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"$schema\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("sarif-2.1.0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"name\": \"elmo_analyze\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"ruleId\": \"overflow:unchecked-arith\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"level\": \"error\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"startLine\": 5"), std::string::npos) << r.output;
  // Rule metadata: every emitted rule carries a fullDescription and a
  // stable helpUri (host elmo-analyze.invalid, path /rules/<pass>,
  // fragment <rule>).
  EXPECT_NE(r.output.find("\"fullDescription\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(
                "\"helpUri\": "
                "\"https://elmo-analyze.invalid/rules/overflow#unchecked-"
                "arith\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bypassing bigint/checked.hpp"), std::string::npos)
      << r.output;
}

TEST(AnalyzeBaseline, StaleEntriesFailFullRuns) {
  // Stale enforcement only applies to full runs (no explicit file list,
  // all passes on): a baseline key that no longer fires is itself a
  // finding.
  const std::string baseline = ::testing::TempDir() + "stale_baseline.txt";
  {
    std::ofstream out(baseline);
    out << "# long-gone finding\n"
        << "overflow:unchecked-arith:no/such/file.cpp:99\n";
  }
  RunResult full = run_in(kFixtures, kBin + " --root=include_tree --baseline=" +
                                         baseline);
  EXPECT_EQ(full.exit_code, 1) << full.output;
  EXPECT_NE(full.output.find("[baseline:stale]"), std::string::npos)
      << full.output;
  EXPECT_NE(full.output.find("overflow:unchecked-arith:no/such/file.cpp:99"),
            std::string::npos)
      << full.output;

  // Single-pass runs must NOT enforce staleness: most passes never ran,
  // so an unfired key proves nothing.
  RunResult partial = run_in(kFixtures,
                             kBin + " --pass=overflow --baseline=" + baseline +
                                 " overflow/overflow_clean.cpp");
  EXPECT_EQ(partial.exit_code, 0) << partial.output;
}

TEST(AnalyzeBaseline, SuppressesListedKeysOnly) {
  const std::string baseline = ::testing::TempDir() + "baseline.txt";
  {
    std::ofstream out(baseline);
    out << "# grandfathered fixture findings\n"
        << "overflow:unchecked-arith:overflow/overflow_bad.cpp:5\n"
        << "overflow:unchecked-arith:overflow/overflow_bad.cpp:9\n";
  }
  RunResult all = run_in(kFixtures,
                         kBin + " --pass=overflow --baseline=" + baseline +
                             " overflow/overflow_bad.cpp");
  EXPECT_EQ(all.exit_code, 0) << all.output;
  EXPECT_NE(all.output.find("2 baselined"), std::string::npos) << all.output;

  // A baseline listing only one of the two keys must still fail.
  {
    std::ofstream out(baseline);
    out << "overflow:unchecked-arith:overflow/overflow_bad.cpp:5\n";
  }
  RunResult partial = run_in(kFixtures,
                             kBin + " --pass=overflow --baseline=" +
                                 baseline + " overflow/overflow_bad.cpp");
  EXPECT_EQ(partial.exit_code, 1) << partial.output;
}

TEST(AnalyzeBaseline, WriteBaselineRoundTrips) {
  const std::string baseline = ::testing::TempDir() + "written_baseline.txt";
  RunResult write = run_in(kFixtures,
                           kBin + " --pass=overflow --write-baseline=" +
                               baseline + " overflow/overflow_bad.cpp");
  EXPECT_EQ(write.exit_code, 1) << write.output;
  RunResult reread = run_in(kFixtures,
                            kBin + " --pass=overflow --baseline=" + baseline +
                                " overflow/overflow_bad.cpp");
  EXPECT_EQ(reread.exit_code, 0) << reread.output;
}

TEST(AnalyzeSelfCheck, RepoSourceTreeIsCleanUnderCommittedBaseline) {
  RunResult r = run_in(kSourceRoot,
                       kBin + " --root=. --baseline=tools/analyze_baseline.txt");
  EXPECT_EQ(r.exit_code, 0)
      << "elmo_analyze reports findings over src/ not covered by "
         "tools/analyze_baseline.txt — fix them or (after review) "
         "regenerate the baseline:\n"
      << r.output;
}

}  // namespace
