file(REMOVE_RECURSE
  "CMakeFiles/test_reversible_split.dir/test_reversible_split.cpp.o"
  "CMakeFiles/test_reversible_split.dir/test_reversible_split.cpp.o.d"
  "test_reversible_split"
  "test_reversible_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reversible_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
