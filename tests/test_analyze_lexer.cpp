// Unit tests for the analyzer's stripper/lexer core, linked directly
// against tools/analyze/{source,lexer}.cpp (the rest of the test surface
// drives the elmo_analyze binary end-to-end; these pin byte-level literal
// handling that end-to-end goldens would only show as mystery findings).
//
// The load-bearing case is raw string literals: a body containing
// `send(` / `recv` / unbalanced parentheses must never leak tokens into
// the protocol/typestate passes, whether the text was stripped first or
// handed to lex() raw.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"
#include "analyze/source.hpp"

namespace {

using elmo_analyze::lex;
using elmo_analyze::strip_noncode;
using elmo_analyze::Token;

std::vector<std::string> texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  out.reserve(toks.size());
  for (const Token& t : toks) out.push_back(t.text);
  return out;
}

bool has_token(const std::vector<Token>& toks, const std::string& text) {
  return std::any_of(toks.begin(), toks.end(),
                     [&](const Token& t) { return t.text == text; });
}

TEST(AnalyzeLexer, RawStringBodyDoesNotLeakThroughStripper) {
  // The body spells a send call, a recv, unbalanced parens and a quote —
  // none of it is code.
  const std::string src =
      "auto s = R\"(send(1, 2) recv barrier \" ))\";\n"
      "int after = 0;\n";
  const auto toks = lex(strip_noncode(src));
  EXPECT_FALSE(has_token(toks, "send"));
  EXPECT_FALSE(has_token(toks, "recv"));
  EXPECT_FALSE(has_token(toks, "barrier"));
  const std::vector<std::string> expect = {"auto", "s",     "=", ";",
                                           "int",  "after", "=", "0", ";"};
  EXPECT_EQ(texts(toks), expect);
  // Line attribution survives: `after` sits on line 2.
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[5].line, 2u);
}

TEST(AnalyzeLexer, RawStringBodyDoesNotLeakFromUnstrippedText) {
  // lex() must be safe on raw (unstripped) text too: the phantom `send(`
  // inside the literal may not become tokens.
  const std::string src = "call(R\"(send(7, x))\", other);";
  const auto toks = lex(src);
  EXPECT_FALSE(has_token(toks, "send"));
  const std::vector<std::string> expect = {"call", "(", ",", "other",
                                           ")",    ";"};
  EXPECT_EQ(texts(toks), expect);
}

TEST(AnalyzeLexer, DelimitedRawStringTerminatesOnItsOwnDelimiter) {
  const std::string src =
      "auto s = R\"xy(send() )\" still_literal)xy\"; f();";
  const auto toks = lex(strip_noncode(src));
  EXPECT_FALSE(has_token(toks, "send"));
  EXPECT_FALSE(has_token(toks, "still_literal"));
  EXPECT_TRUE(has_token(toks, "f"));
}

TEST(AnalyzeLexer, MultiLineRawStringKeepsLineNumbers) {
  const std::string src =
      "auto s = R\"(line one send(\n"
      "line two)\n"
      ")\";\n"
      "int tail = 1;\n";
  const auto toks = lex(strip_noncode(src));
  EXPECT_FALSE(has_token(toks, "send"));
  ASSERT_TRUE(has_token(toks, "tail"));
  for (const Token& t : toks) {
    if (t.text == "tail") EXPECT_EQ(t.line, 4u);
  }
}

TEST(AnalyzeLexer, InvalidRawOpenerDoesNotSwallowFollowingCode) {
  // `R"..."` with no '(' inside the 16-char d-char bound is not a raw
  // string.  The old unbounded '(' search crossed the closing quote and
  // newlines, built a garbage terminator, and erased the next lines of
  // real code.
  const std::string src =
      "auto a = R\"no_paren_here\";\n"
      "int send_x = 1;\n"
      "f(send_x);\n"
      "int z = (1);\n";
  const auto toks = lex(strip_noncode(src));
  EXPECT_TRUE(has_token(toks, "send_x"));
  EXPECT_TRUE(has_token(toks, "f"));
  EXPECT_TRUE(has_token(toks, "z"));
}

TEST(AnalyzeLexer, PlainStringAndCharDoNotLeakFromUnstrippedText) {
  const std::string src = "g(\"send(1)\", 'x', 1'000'000);";
  const auto toks = lex(src);
  EXPECT_FALSE(has_token(toks, "send"));
  EXPECT_FALSE(has_token(toks, "x"));
  // Digit separators keep working: `1'000'000` stays numeric tokens.
  EXPECT_TRUE(has_token(toks, "1"));
  EXPECT_TRUE(has_token(toks, "000"));
}

TEST(AnalyzeLexer, AdjacentRawStringsEachTerminate) {
  const std::string src = "h(R\"(send()\", R\"(recv()\"); tail();";
  const auto toks = lex(strip_noncode(src));
  EXPECT_FALSE(has_token(toks, "send"));
  EXPECT_FALSE(has_token(toks, "recv"));
  EXPECT_TRUE(has_token(toks, "tail"));
}

}  // namespace
