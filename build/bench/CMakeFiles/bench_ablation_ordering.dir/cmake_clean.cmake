file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ordering.dir/bench_ablation_ordering.cpp.o"
  "CMakeFiles/bench_ablation_ordering.dir/bench_ablation_ordering.cpp.o.d"
  "bench_ablation_ordering"
  "bench_ablation_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
