// Exact rational numbers over an integer scalar (CheckedI64 or BigInt).
//
// Always stored normalised: gcd(num, den) == 1 and den > 0.  Rationals are
// used where true division is unavoidable — reduced row echelon form for the
// initial nullspace basis and the network-compression reconstruction map —
// after which columns are rescaled to integer vectors.
#pragma once

#include <compare>
#include <string>

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"
#include "bigint/scalar.hpp"
#include "support/error.hpp"

namespace elmo {

template <typename Int>
class Rational {
 public:
  Rational() : num_(scalar_from_i64<Int>(0)), den_(scalar_from_i64<Int>(1)) {}

  Rational(Int numerator)  // NOLINT(google-explicit-constructor)
      : num_(std::move(numerator)), den_(scalar_from_i64<Int>(1)) {}

  Rational(Int numerator, Int denominator)
      : num_(std::move(numerator)), den_(std::move(denominator)) {
    if (scalar_is_zero(den_))
      throw InvalidArgumentError("Rational: zero denominator");
    normalize();
  }

  static Rational from_i64(std::int64_t n, std::int64_t d = 1) {
    return Rational(scalar_from_i64<Int>(n), scalar_from_i64<Int>(d));
  }

  [[nodiscard]] const Int& num() const { return num_; }
  [[nodiscard]] const Int& den() const { return den_; }
  [[nodiscard]] bool is_zero() const { return scalar_is_zero(num_); }
  [[nodiscard]] bool is_integer() const {
    return den_ == scalar_from_i64<Int>(1);
  }
  [[nodiscard]] int sign() const { return scalar_sign(num_); }

  [[nodiscard]] double to_double() const {
    return scalar_to_double(num_) / scalar_to_double(den_);
  }

  [[nodiscard]] std::string to_string() const {
    if (is_integer()) return scalar_to_string(num_);
    return scalar_to_string(num_) + "/" + scalar_to_string(den_);
  }

  [[nodiscard]] Rational operator-() const {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  [[nodiscard]] Rational reciprocal() const {
    if (is_zero())
      throw InvalidArgumentError("Rational: reciprocal of zero");
    return Rational(den_, num_);
  }

  Rational& operator+=(const Rational& rhs) {
    num_ = num_ * rhs.den_ + rhs.num_ * den_;
    den_ = den_ * rhs.den_;
    normalize();
    return *this;
  }
  Rational& operator-=(const Rational& rhs) {
    num_ = num_ * rhs.den_ - rhs.num_ * den_;
    den_ = den_ * rhs.den_;
    normalize();
    return *this;
  }
  Rational& operator*=(const Rational& rhs) {
    num_ = num_ * rhs.num_;
    den_ = den_ * rhs.den_;
    normalize();
    return *this;
  }
  Rational& operator/=(const Rational& rhs) {
    if (rhs.is_zero())
      throw InvalidArgumentError("Rational: division by zero");
    num_ = num_ * rhs.den_;
    den_ = den_ * rhs.num_;
    normalize();
    return *this;
  }

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) {
    // Cross-multiply; denominators are positive by invariant.
    Int lhs = a.num_ * b.den_;
    Int rhs = b.num_ * a.den_;
    return lhs <=> rhs;
  }

 private:
  void normalize() {
    if (scalar_is_zero(num_)) {
      num_ = scalar_from_i64<Int>(0);
      den_ = scalar_from_i64<Int>(1);
      return;
    }
    if (scalar_sign(den_) < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    Int g = scalar_gcd(num_, den_);
    if (!(g == scalar_from_i64<Int>(1))) {
      num_ = scalar_exact_div(num_, g);
      den_ = scalar_exact_div(den_, g);
    }
  }

  Int num_;
  Int den_;
};

using RationalI64 = Rational<CheckedI64>;
using BigRational = Rational<BigInt>;

// Scalar-trait overloads so Rational can be used by the templated kernels.
template <typename Int>
bool scalar_is_zero(const Rational<Int>& x) {
  return x.is_zero();
}
template <typename Int>
int scalar_sign(const Rational<Int>& x) {
  return x.sign();
}
template <typename Int>
Rational<Int> scalar_from_i64(std::int64_t v, const Rational<Int>*) {
  return Rational<Int>::from_i64(v);
}
template <typename Int>
double scalar_to_double(const Rational<Int>& x) {
  return x.to_double();
}
template <typename Int>
std::string scalar_to_string(const Rational<Int>& x) {
  return x.to_string();
}
template <typename Int>
Rational<Int> scalar_gcd(const Rational<Int>&, const Rational<Int>&) {
  // Rationals form a field; gcd is not meaningful for normalisation.
  return Rational<Int>::from_i64(1);
}
template <typename Int>
Rational<Int> scalar_exact_div(const Rational<Int>& a,
                               const Rational<Int>& b) {
  Rational<Int> r = a;
  r /= b;
  return r;
}
template <typename Int>
Rational<Int> scalar_abs(const Rational<Int>& x) {
  return x.sign() < 0 ? -x : x;
}

}  // namespace elmo
