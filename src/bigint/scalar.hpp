// Uniform scalar operations for the templated linear-algebra and Nullspace
// Algorithm kernels.
//
// Three scalar families are supported:
//   CheckedI64 - fast exact path, throws OverflowError when it cannot
//                represent a result (the solver retries with BigInt),
//   BigInt     - always-exact fallback,
//   double     - inexact comparison kernel (tolerance-based sign/zero tests),
//                kept for arithmetic-ablation benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"

namespace elmo {

/// Tolerance used by the double kernel for zero/sign decisions.  Matches the
/// magnitude used by floating-point EFM implementations (efmtool uses 1e-10).
inline constexpr double kDoubleZeroTol = 1e-9;

// ---- is-zero ----
inline bool scalar_is_zero(const CheckedI64& x) { return x.is_zero(); }
inline bool scalar_is_zero(const BigInt& x) { return x.is_zero(); }
inline bool scalar_is_zero(double x) { return std::fabs(x) < kDoubleZeroTol; }

// ---- sign: -1 / 0 / +1 ----
inline int scalar_sign(const CheckedI64& x) { return x.sign(); }
inline int scalar_sign(const BigInt& x) { return x.sign(); }
inline int scalar_sign(double x) {
  if (std::fabs(x) < kDoubleZeroTol) return 0;
  return x < 0 ? -1 : 1;
}

// ---- conversions ----
inline CheckedI64 scalar_from_i64(std::int64_t v, const CheckedI64*) {
  return CheckedI64(v);
}
inline BigInt scalar_from_i64(std::int64_t v, const BigInt*) {
  return BigInt(v);
}
inline double scalar_from_i64(std::int64_t v, const double*) {
  return static_cast<double>(v);
}

template <typename T>
T scalar_from_i64(std::int64_t v) {
  return scalar_from_i64(v, static_cast<const T*>(nullptr));
}

// Exact conversion from the archival BigInt form (checkpoint records are
// scalar-agnostic).  The CheckedI64 overload throws OverflowError when the
// value does not fit, which rides the solver's existing BigInt fallback.
inline CheckedI64 scalar_from_bigint(const BigInt& v, const CheckedI64*) {
  return CheckedI64(v.to_i64());
}
inline BigInt scalar_from_bigint(const BigInt& v, const BigInt*) { return v; }
inline double scalar_from_bigint(const BigInt& v, const double*) {
  return v.to_double();
}

template <typename T>
T scalar_from_bigint(const BigInt& v) {
  return scalar_from_bigint(v, static_cast<const T*>(nullptr));
}

inline double scalar_to_double(const CheckedI64& x) { return x.to_double(); }
inline double scalar_to_double(const BigInt& x) { return x.to_double(); }
inline double scalar_to_double(double x) { return x; }

inline std::string scalar_to_string(const CheckedI64& x) {
  return x.to_string();
}
inline std::string scalar_to_string(const BigInt& x) { return x.to_string(); }
inline std::string scalar_to_string(double x) { return std::to_string(x); }

// ---- gcd (for column normalisation; 1.0 for double so it is a no-op) ----
inline CheckedI64 scalar_gcd(const CheckedI64& a, const CheckedI64& b) {
  return CheckedI64::gcd(a, b);
}
inline BigInt scalar_gcd(const BigInt& a, const BigInt& b) {
  return BigInt::gcd(a, b);
}
inline double scalar_gcd(double, double) { return 1.0; }

// ---- exact division (guaranteed-divisible in fraction-free elimination) --
inline CheckedI64 scalar_exact_div(const CheckedI64& a, const CheckedI64& b) {
  return a.exact_div(b);
}
inline BigInt scalar_exact_div(const BigInt& a, const BigInt& b) {
  return a.exact_div(b);
}
inline double scalar_exact_div(double a, double b) { return a / b; }

// ---- abs ----
inline CheckedI64 scalar_abs(const CheckedI64& x) { return x.abs(); }
inline BigInt scalar_abs(const BigInt& x) { return x.abs(); }
inline double scalar_abs(double x) { return std::fabs(x); }

/// True iff T performs exact arithmetic (zero tests are precise).
template <typename T>
inline constexpr bool scalar_is_exact_v = !std::is_same_v<T, double>;

}  // namespace elmo
