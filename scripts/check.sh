#!/usr/bin/env bash
# Full verification sweep:
#   1. plain build + entire ctest suite (tier-1 gate),
#   2. ASan/UBSan build + entire ctest suite,
#   3. TSan build + the threaded suites (the simulated MPI runtime, the
#      shared-memory pool, and the fault-tolerance machinery).
#
# Usage: scripts/check.sh [-jN]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

run() { echo "+ $*" >&2; "$@"; }

echo "== 1/3 plain build =="
run cmake -B build -S . >/dev/null
run cmake --build build "${JOBS}"
(cd build && run ctest --output-on-failure)

echo "== 2/3 address+undefined sanitizers =="
run cmake -B build-asan -S . -DELMO_SANITIZE=address,undefined >/dev/null
run cmake --build build-asan "${JOBS}"
(cd build-asan && run ctest --output-on-failure)

echo "== 3/3 thread sanitizer (threaded suites) =="
run cmake -B build-tsan -S . -DELMO_SANITIZE=thread >/dev/null
run cmake --build build-tsan "${JOBS}" --target \
    test_mpsim test_parallel test_fault_tolerance
(cd build-tsan && run ctest --output-on-failure \
    -R '^(test_mpsim|test_parallel|test_fault_tolerance)$')

echo "all checks passed"
