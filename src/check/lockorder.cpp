#include "check/lockorder.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>

namespace elmo::check {

struct LockOrderGraph::Impl {
  std::mutex mutex;
  // Adjacency: edge from -> {to...}.  Names are interned copies; the graph
  // stays small (one node per instrumented lock name).
  std::map<std::string, std::set<std::string>> edges;

  // Per-thread stack of currently held instrumented locks.
  static std::vector<std::string>& held() {
    thread_local std::vector<std::string> stack;
    return stack;
  }

  /// Is `target` reachable from `start` following recorded edges?  Returns
  /// the path if so (graph is tiny; recursive DFS with a visited set).
  bool path_to(const std::string& start, const std::string& target,
               std::set<std::string>& visited,
               std::vector<std::string>& path) {
    if (start == target) {
      path.push_back(start);
      return true;
    }
    if (!visited.insert(start).second) return false;
    auto it = edges.find(start);
    if (it == edges.end()) return false;
    for (const auto& next : it->second) {
      if (path_to(next, target, visited, path)) {
        path.push_back(start);
        return true;
      }
    }
    return false;
  }
};

// Intentionally leaked process singleton; threads may record acquisitions
// during static teardown.  lint:allow(naked-new)
LockOrderGraph::LockOrderGraph() : impl_(new Impl()) {}

LockOrderGraph& LockOrderGraph::global() {
  static LockOrderGraph graph;
  return graph;
}

void LockOrderGraph::on_acquire(const char* name) {
  auto& held = Impl::held();
  {
    std::unique_lock lock(impl_->mutex);
    for (const auto& outer : held) {
      if (outer == name) continue;  // recursive use of one name: not an edge
      // Adding outer -> name closes a cycle iff outer is already reachable
      // from name.
      std::set<std::string> visited;
      std::vector<std::string> path;
      if (impl_->path_to(name, outer, visited, path)) {
        // path holds [outer, ..., name]; reversed it reads name..outer, so
        // prefixing the held lock renders outer -> name -> ... -> outer.
        std::string cycle = outer;
        for (auto it = path.rbegin(); it != path.rend(); ++it)
          cycle += " -> " + *it;
        lock.unlock();
        throw ContractViolation("lock-order cycle: " + cycle);
      }
      impl_->edges[outer].insert(name);
    }
  }
  held.emplace_back(name);
}

void LockOrderGraph::on_release(const char* name) {
  auto& held = Impl::held();
  auto it = std::find(held.rbegin(), held.rend(), std::string(name));
  if (it != held.rend()) held.erase(std::next(it).base());
}

std::vector<std::string> LockOrderGraph::edges() const {
  std::vector<std::string> out;
  std::unique_lock lock(impl_->mutex);
  for (const auto& [from, tos] : impl_->edges)
    for (const auto& to : tos) out.push_back(from + " -> " + to);
  return out;
}

void LockOrderGraph::reset() {
  std::unique_lock lock(impl_->mutex);
  impl_->edges.clear();
}

}  // namespace elmo::check
