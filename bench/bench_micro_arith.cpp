// Microbenchmark: arithmetic kernels.
//
// The solver defaults to overflow-checked int64 and falls back to BigInt;
// a double kernel exists for comparison with floating-point EFM tools.
// Measures the primitive operations (BigInt mul/div, modular mulmod,
// checked i64) and a whole toy-network solve per kernel.
#include <benchmark/benchmark.h>

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"
#include "bitset/bitset64.hpp"
#include "compress/compression.hpp"
#include "models/toy.hpp"
#include "models/random_network.hpp"
#include "nullspace/modular_rank.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/solver.hpp"
#include "support/random.hpp"

namespace {

using namespace elmo;

void BM_CheckedI64_MulAdd(benchmark::State& state) {
  Rng rng(1);
  CheckedI64 a(static_cast<std::int64_t>(rng.below(1 << 20)));
  CheckedI64 b(static_cast<std::int64_t>(rng.below(1 << 20)));
  CheckedI64 acc(1);
  for (auto _ : state) {
    acc = a * b + acc;
    a = CheckedI64(acc.value() & 0xfffff);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CheckedI64_MulAdd);

void BM_Modular_MulMod(benchmark::State& state) {
  Rng rng(2);
  std::uint64_t a = rng.next() % modular::kPrime;
  std::uint64_t b = rng.next() % modular::kPrime;
  for (auto _ : state) {
    a = modular::mulmod(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Modular_MulMod);

void BM_BigInt_Multiply256Bit(benchmark::State& state) {
  BigInt a = BigInt::from_string("123456789012345678901234567890123456789");
  BigInt b = BigInt::from_string("987654321098765432109876543210987654321");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigInt_Multiply256Bit);

void BM_BigInt_DivMod256Bit(benchmark::State& state) {
  BigInt a = BigInt::from_string(
      "12193263113702179522618503273362292333223746380111126352690");
  BigInt b = BigInt::from_string("987654321098765432109876543210987654321");
  for (auto _ : state) {
    BigInt q;
    BigInt r;
    BigInt::divmod(a, b, q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigInt_DivMod256Bit);

template <typename Scalar>
void solve_kernel_benchmark(benchmark::State& state) {
  models::RandomNetworkSpec spec;
  spec.seed = 9;
  spec.num_metabolites = 7;
  spec.num_extra_reactions = 5;
  spec.num_exchanges = 4;
  auto compressed = compress(models::random_network(spec));
  auto problem = to_problem<Scalar>(compressed);
  for (auto _ : state) {
    auto result = solve_efms<Scalar, Bitset64>(problem);
    benchmark::DoNotOptimize(result.columns.size());
  }
}

void BM_SolveKernel_CheckedI64(benchmark::State& state) {
  solve_kernel_benchmark<CheckedI64>(state);
}
BENCHMARK(BM_SolveKernel_CheckedI64)->Unit(benchmark::kMicrosecond);

void BM_SolveKernel_BigInt(benchmark::State& state) {
  solve_kernel_benchmark<BigInt>(state);
}
BENCHMARK(BM_SolveKernel_BigInt)->Unit(benchmark::kMicrosecond);

void BM_SolveKernel_Double(benchmark::State& state) {
  solve_kernel_benchmark<double>(state);
}
BENCHMARK(BM_SolveKernel_Double)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
