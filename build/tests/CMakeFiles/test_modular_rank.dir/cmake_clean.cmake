file(REMOVE_RECURSE
  "CMakeFiles/test_modular_rank.dir/test_modular_rank.cpp.o"
  "CMakeFiles/test_modular_rank.dir/test_modular_rank.cpp.o.d"
  "test_modular_rank"
  "test_modular_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modular_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
