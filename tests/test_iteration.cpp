// Unit tests for the iteration machinery: classification, candidate-ref
// generation (support cancellation, pre-test bounds), blocked processing
// (memory cap, cross-block dedup), and merge_next semantics.
#include "nullspace/iteration.hpp"

#include <gtest/gtest.h>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "nullspace/rank_test.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

using Col = FluxColumn<CheckedI64, Bitset64>;

Col col(std::initializer_list<std::int64_t> values) {
  std::vector<CheckedI64> v;
  for (auto x : values) v.emplace_back(x);
  return Col::from_values(std::move(v));
}

TEST(FluxColumn, FromValuesNormalisesAndComputesSupport) {
  Col c = col({0, 6, -9, 0});
  EXPECT_EQ(c.values[1].value(), 2);  // divided by gcd 3
  EXPECT_EQ(c.values[2].value(), -3);
  EXPECT_FALSE(c.support.test(0));
  EXPECT_TRUE(c.support.test(1));
  EXPECT_TRUE(c.support.test(2));
  EXPECT_EQ(c.support.count(), 2u);
}

TEST(FluxColumn, CombineAnnihilatesRow) {
  Col u = col({1, 2, 0});   // positive at row 0
  Col v = col({-2, 0, 3});  // negative at row 0
  Col w = combine_columns(u, v, 0);
  EXPECT_TRUE(scalar_is_zero(w.values[0]));
  // w = 2*u + 1*v = (0, 4, 3).
  EXPECT_EQ(w.values[1].value(), 4);
  EXPECT_EQ(w.values[2].value(), 3);
}

TEST(ClassifyRow, SplitsBySign) {
  std::vector<Col> columns = {col({1, 0}), col({-1, 1}), col({0, 1}),
                              col({2, -1})};
  auto cls = classify_row(columns, 0);
  EXPECT_EQ(cls.positive, (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(cls.negative, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(cls.zero, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(cls.pair_count(), 2u);
}

TEST(GenerateRefs, ComputesExactSupportWithCancellation) {
  // u = (1, 1, 1, 0), v = (-1, -1, 0, 1): combination u + v = (0, 0, 1, 1)
  // — row 1 cancels even though both supports contain it.
  std::vector<Col> columns = {col({1, 1, 1, 0}), col({-1, -1, 0, 1})};
  RowClassification cls;
  cls.positive = {0};
  cls.negative = {1};
  std::vector<CandidateRef<Bitset64>> refs;
  IterationStats stats;
  std::uint64_t cursor = 0;
  generate_candidate_refs(columns, /*row=*/0, cls, &cursor, 1, /*rank=*/3,
                          SIZE_MAX, refs, stats);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_FALSE(refs[0].support.test(0));
  EXPECT_FALSE(refs[0].support.test(1));  // cancelled
  EXPECT_TRUE(refs[0].support.test(2));
  EXPECT_TRUE(refs[0].support.test(3));
  EXPECT_EQ(stats.pairs_probed, 1u);
  EXPECT_EQ(stats.pretest_survivors, 1u);
}

TEST(GenerateRefs, MirrorPairProducesNoCandidate) {
  // v = -u: the combination is the zero vector.
  std::vector<Col> columns = {col({1, 2, -1}), col({-1, -2, 1})};
  RowClassification cls;
  cls.positive = {0};
  cls.negative = {1};
  std::vector<CandidateRef<Bitset64>> refs;
  IterationStats stats;
  std::uint64_t cursor = 0;
  generate_candidate_refs(columns, 0, cls, &cursor, 1, 3, SIZE_MAX, refs,
                          stats);
  EXPECT_TRUE(refs.empty());
  EXPECT_EQ(stats.pretest_survivors, 1u);
}

TEST(GenerateRefs, PreTestRejectsWideUnions) {
  // rank = 1 => unions of more than 3 rows are rejected without
  // materialisation.
  std::vector<Col> columns = {col({1, 1, 1, 0, 0}), col({-1, 0, 0, 1, 1})};
  RowClassification cls;
  cls.positive = {0};
  cls.negative = {1};
  std::vector<CandidateRef<Bitset64>> refs;
  IterationStats stats;
  std::uint64_t cursor = 0;
  generate_candidate_refs(columns, 0, cls, &cursor, 1, /*rank=*/1, SIZE_MAX,
                          refs, stats);
  EXPECT_TRUE(refs.empty());
  EXPECT_EQ(stats.pairs_probed, 1u);
  EXPECT_EQ(stats.pretest_survivors, 0u);  // union of 5 > rank + 2
}

TEST(GenerateRefs, RefCapPausesAndResumes) {
  // 3 positives x 2 negatives = 6 pairs, all surviving; cap at 2 refs per
  // call and resume via the cursor.
  std::vector<Col> columns = {col({1, 1, 0}),  col({2, 0, 1}),
                              col({1, 1, 1}),  col({-1, 1, 0}),
                              col({-2, 0, 1})};
  RowClassification cls;
  cls.positive = {0, 1, 2};
  cls.negative = {3, 4};
  std::uint64_t cursor = 0;
  IterationStats stats;
  std::size_t calls = 0;
  std::size_t total_refs = 0;
  while (cursor < cls.pair_count()) {
    std::vector<CandidateRef<Bitset64>> refs;
    generate_candidate_refs(columns, 0, cls, &cursor, cls.pair_count(),
                            /*rank=*/5, /*ref_cap=*/2, refs, stats);
    EXPECT_LE(refs.size(), 2u);
    total_refs += refs.size();
    ++calls;
    ASSERT_LT(calls, 20u) << "cursor failed to advance";
  }
  EXPECT_EQ(stats.pairs_probed, 6u);
  EXPECT_EQ(total_refs, stats.pretest_survivors);
  EXPECT_GE(calls, 3u);  // the cap forced multiple blocks
}

TEST(ProcessPairRange, BlockedRunMatchesUnblocked) {
  // Random columns; compare accepted sets between a one-shot run and a
  // tiny-block run.
  Rng rng(15);
  std::vector<Col> columns;
  for (int c = 0; c < 24; ++c) {
    std::vector<CheckedI64> v(6, CheckedI64(0));
    for (int k = 0; k < 3; ++k)
      v[rng.below(6)] = CheckedI64(rng.range(-2, 2));
    v[rng.below(6)] = CheckedI64(1 + static_cast<std::int64_t>(rng.below(2)));
    columns.push_back(Col::from_values(std::move(v)));
  }
  Matrix<CheckedI64> n = Matrix<CheckedI64>::from_rows(
      {{1, -1, 0, 0, 0, 0}, {0, 1, -1, 0, 0, 0}, {0, 0, 1, -1, 1, -1}});
  RankTester<CheckedI64> tester(n);
  auto is_elementary = [&](const Bitset64& s) {
    return tester.is_elementary(s);
  };

  auto run = [&](std::size_t cap) {
    auto cls = classify_row(columns, 0);
    IterationStats stats;
    PhaseTimer phases;
    std::vector<Col> accepted;
    process_pair_range(columns, 0, cls, /*rank=*/3, 0, cls.pair_count(), cap,
                       is_elementary, stats, phases, accepted);
    std::sort(accepted.begin(), accepted.end());
    return accepted;
  };
  auto one_shot = run(SIZE_MAX);
  auto blocked = run(1);
  EXPECT_EQ(one_shot, blocked);
}

TEST(MergeNext, KeepsNegativesOnlyForReversibleRows) {
  std::vector<Col> columns = {col({1, 0}), col({-1, 1}), col({0, 1})};
  auto cls = classify_row(columns, 0);
  {
    auto copy = columns;
    auto next = merge_next(std::move(copy), cls, /*row_reversible=*/false,
                           {});
    EXPECT_EQ(next.size(), 2u);  // zero + positive
  }
  {
    auto copy = columns;
    auto next =
        merge_next(std::move(copy), cls, /*row_reversible=*/true, {});
    EXPECT_EQ(next.size(), 3u);
  }
}

TEST(CrossCandidateFilter, RemovesSupersets) {
  std::vector<Col> accepted = {col({1, 1, 0, 0}), col({1, 1, 1, 0})};
  IterationStats stats;
  stats.accepted = 2;
  cross_candidate_subset_filter(accepted, stats);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].support.count(), 2u);
  EXPECT_EQ(stats.accepted, 1u);
}

}  // namespace
}  // namespace elmo
