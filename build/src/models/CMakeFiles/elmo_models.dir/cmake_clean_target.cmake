file(REMOVE_RECURSE
  "libelmo_models.a"
)
