// Seeds include:missing-include — UtilThing arrives only via middle.hpp.
#include "support/middle.hpp"

int use_both() {
  MiddleThing m;
  UtilThing u;
  return m.inner.value + u.value;
}
