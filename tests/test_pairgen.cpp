// Differential tests for the candidate-generation engine (pairgen.hpp).
//
// The engine composes popcount pruning, cache tiling, the SIMD pre-test
// kernel and slab reuse — every one of which must be invisible in the
// output.  The oracle is generate_candidate_refs_reference, the straight
// scalar row-major loop the engine replaced: for random networks (both
// support representations) the engine must produce the exact same
// candidate multiset, the same survivor counts, and charge every pair in
// its range exactly once, under full-range, blocked, partitioned and
// forced-scalar traversal alike.
#include "nullspace/pairgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "nullspace/iteration.hpp"
#include "nullspace/rank_test.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

template <typename Support>
using Cols = std::vector<FluxColumn<CheckedI64, Support>>;

/// Random columns, `nnz` nonzeros each, over `q` reactions.  Larger `nnz`
/// against a small rank exercises the popcount prune (columns whose own
/// support already breaks rank + 2).
template <typename Support>
Cols<Support> random_columns(std::size_t count, std::size_t q,
                             std::size_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  Cols<Support> columns;
  columns.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    std::vector<CheckedI64> values(q, CheckedI64(0));
    for (std::size_t k = 0; k < 1 + rng.below(nnz); ++k)
      values[rng.below(q)] = CheckedI64(rng.range(-3, 3));
    values[rng.below(q)] = CheckedI64(1 + static_cast<std::int64_t>(rng.below(2)));
    columns.push_back(
        FluxColumn<CheckedI64, Support>::from_values(std::move(values)));
  }
  return columns;
}

/// Row with the largest pair space (so the tests actually cover pairs).
template <typename Support>
std::size_t busiest_row(const Cols<Support>& columns, std::size_t q,
                        RowClassification* cls) {
  std::size_t row = 0;
  for (std::size_t r = 0; r < q; ++r) {
    auto c = classify_row(columns, r);
    if (c.pair_count() > cls->pair_count()) {
      *cls = std::move(c);
      row = r;
    }
  }
  return row;
}

template <typename Support>
void sort_refs(std::vector<CandidateRef<Support>>& refs) {
  std::sort(refs.begin(), refs.end(),
            [](const CandidateRef<Support>& a, const CandidateRef<Support>& b) {
              if (a.positive != b.positive) return a.positive < b.positive;
              return a.negative < b.negative;
            });
}

template <typename Support>
void expect_same_refs(std::vector<CandidateRef<Support>> got,
                      std::vector<CandidateRef<Support>> want) {
  sort_refs(got);
  sort_refs(want);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].positive, want[k].positive) << "ref " << k;
    EXPECT_EQ(got[k].negative, want[k].negative) << "ref " << k;
    EXPECT_TRUE(got[k].support == want[k].support) << "ref " << k;
  }
}

/// Engine output over [0, pair_count) in one call.
template <typename Support>
std::vector<CandidateRef<Support>> engine_refs(const Cols<Support>& columns,
                                               std::size_t row,
                                               const RowClassification& cls,
                                               std::size_t rank,
                                               IterationStats& stats,
                                               PairGenConfig config = {}) {
  PairGenTables<CheckedI64, Support> tables(columns, row, cls.positive,
                                            cls.negative, cls.zero, rank,
                                            config);
  PairGen<CheckedI64, Support> gen(tables, 0, tables.pair_count());
  std::vector<CandidateRef<Support>> refs;
  gen.generate(SIZE_MAX, refs, stats);
  return refs;
}

template <typename Support>
std::vector<CandidateRef<Support>> reference_refs(
    const Cols<Support>& columns, std::size_t row,
    const RowClassification& cls, std::size_t rank, IterationStats& stats) {
  std::vector<CandidateRef<Support>> refs;
  std::uint64_t cursor = 0;
  generate_candidate_refs_reference(columns, row, cls, &cursor,
                                    cls.pair_count(), rank, SIZE_MAX, refs,
                                    stats);
  return refs;
}

template <typename Support>
void differential_case(std::size_t q, std::size_t nnz, std::size_t rank,
                       std::uint64_t seed) {
  auto columns = random_columns<Support>(160, q, nnz, seed);
  RowClassification cls;
  const std::size_t row = busiest_row(columns, q, &cls);
  ASSERT_GT(cls.pair_count(), 0u);

  IterationStats ref_stats;
  auto want = reference_refs(columns, row, cls, rank, ref_stats);
  IterationStats eng_stats;
  auto got = engine_refs(columns, row, cls, rank, eng_stats);

  // Same candidates, same probe accounting: the prune only reorders and
  // bulk-charges, it never changes what survives.
  expect_same_refs(got, want);
  EXPECT_EQ(eng_stats.pairs_probed, ref_stats.pairs_probed);
  EXPECT_EQ(eng_stats.pairs_probed, cls.pair_count());
  EXPECT_EQ(eng_stats.pretest_survivors, ref_stats.pretest_survivors);
  EXPECT_LE(eng_stats.pairs_pruned, eng_stats.pairs_probed);
  EXPECT_EQ(ref_stats.pairs_pruned, 0u);
}

TEST(PairGenDifferential, Bitset64MatchesReference) {
  for (std::uint64_t seed : {3u, 11u, 29u}) {
    differential_case<Bitset64>(60, 6, 9, seed);
  }
}

TEST(PairGenDifferential, Bitset64PruneHeavyMatchesReference) {
  // nnz up to 14 against rank 4: many columns individually break the
  // rank + 2 bound, so whole stretches are pruned without probing.
  for (std::uint64_t seed : {5u, 17u}) {
    differential_case<Bitset64>(60, 14, 4, seed);
  }
}

TEST(PairGenDifferential, DynBitsetTwoWordsMatchesReference) {
  for (std::uint64_t seed : {7u, 23u}) {
    differential_case<DynBitset>(100, 7, 10, seed);
  }
}

TEST(PairGenDifferential, DynBitsetThreeWordsMatchesReference) {
  differential_case<DynBitset>(170, 8, 11, 13);
}

TEST(PairGenDifferential, PruneActuallyFires) {
  // Guard against the prune silently never engaging (the differential
  // tests would still pass): wide columns against a small rank must cut.
  auto columns = random_columns<Bitset64>(160, 60, 14, 5);
  RowClassification cls;
  const std::size_t row = busiest_row(columns, 60, &cls);
  IterationStats stats;
  engine_refs(columns, row, cls, /*rank=*/4, stats);
  EXPECT_GT(stats.pairs_pruned, 0u);
  EXPECT_EQ(stats.pairs_probed, cls.pair_count());
}

TEST(PairGenDifferential, ScalarAndSimdKernelsAreBitIdentical) {
  if (!PairGenTables<CheckedI64, Bitset64>(
           {}, 0, {}, {}, {}, 0)
           .simd_active()) {
    GTEST_SKIP() << "SIMD kernel not selectable on this build/CPU";
  }
  for (std::uint64_t seed : {3u, 19u}) {
    auto columns = random_columns<DynBitset>(160, 100, 7, seed);
    RowClassification cls;
    const std::size_t row = busiest_row(columns, 100, &cls);
    IterationStats simd_stats;
    auto simd = engine_refs(columns, row, cls, 10, simd_stats);
    IterationStats scalar_stats;
    PairGenConfig scalar_config;
    scalar_config.force_scalar = true;
    auto scalar = engine_refs(columns, row, cls, 10, scalar_stats,
                              scalar_config);
    expect_same_refs(simd, scalar);
    EXPECT_EQ(simd_stats.pairs_probed, scalar_stats.pairs_probed);
    EXPECT_EQ(simd_stats.pairs_pruned, scalar_stats.pairs_pruned);
    EXPECT_EQ(simd_stats.pretest_survivors, scalar_stats.pretest_survivors);
  }
}

TEST(PairGenResume, RefCapBlockingMatchesOneShot) {
  // Tiny ref caps force a stop after every few refs — including inside a
  // SIMD group, whose remaining lanes must be re-probed on resume.
  auto columns = random_columns<DynBitset>(120, 90, 6, 21);
  RowClassification cls;
  const std::size_t row = busiest_row(columns, 90, &cls);
  IterationStats one_stats;
  auto one_shot = engine_refs(columns, row, cls, 9, one_stats);

  for (std::size_t cap : {std::size_t{1}, std::size_t{3}, std::size_t{17}}) {
    PairGenTables<CheckedI64, DynBitset> tables(columns, row, cls.positive,
                                                cls.negative, cls.zero, 9);
    PairGen<CheckedI64, DynBitset> gen(tables, 0, tables.pair_count());
    IterationStats stats;
    std::vector<CandidateRef<DynBitset>> all;
    std::size_t calls = 0;
    while (!gen.done()) {
      std::vector<CandidateRef<DynBitset>> block;
      gen.generate(cap, block, stats);
      EXPECT_LE(block.size(), cap);
      for (auto& ref : block) all.push_back(std::move(ref));
      ASSERT_LT(++calls, 100000u) << "cursor failed to advance";
    }
    expect_same_refs(all, one_shot);
    EXPECT_EQ(stats.pairs_probed, one_stats.pairs_probed);
    EXPECT_EQ(stats.pretest_survivors, one_stats.pretest_survivors);
  }
}

TEST(PairGenResume, RangePartitionCoversPairSpaceExactlyOnce) {
  // Any partition of [0, pair_count) — rank slices, stolen batches — must
  // reproduce the full-range multiset and conserve the pair count.
  auto columns = random_columns<Bitset64>(140, 60, 8, 31);
  RowClassification cls;
  const std::size_t row = busiest_row(columns, 60, &cls);
  IterationStats full_stats;
  auto full = engine_refs(columns, row, cls, 7, full_stats);

  PairGenTables<CheckedI64, Bitset64> tables(columns, row, cls.positive,
                                             cls.negative, cls.zero, 7);
  const std::uint64_t total = tables.pair_count();
  Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::uint64_t> cuts = {0, total};
    for (int k = 0; k < 9; ++k)
      cuts.push_back(rng.below(total + 1));
    std::sort(cuts.begin(), cuts.end());
    IterationStats stats;
    std::vector<CandidateRef<Bitset64>> all;
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      PairGen<CheckedI64, Bitset64> gen(tables, cuts[k], cuts[k + 1]);
      gen.generate(SIZE_MAX, all, stats);
      EXPECT_TRUE(gen.done());
      EXPECT_EQ(gen.cursor(), cuts[k + 1]);
    }
    expect_same_refs(all, full);
    EXPECT_EQ(stats.pairs_probed, total);
    EXPECT_EQ(stats.pretest_survivors, full_stats.pretest_survivors);
  }
}

TEST(PairGenResume, EmptyAndDegenerateRanges) {
  auto columns = random_columns<Bitset64>(40, 50, 5, 41);
  RowClassification cls;
  const std::size_t row = busiest_row(columns, 50, &cls);
  PairGenTables<CheckedI64, Bitset64> tables(columns, row, cls.positive,
                                             cls.negative, cls.zero, 8);
  PairGen<CheckedI64, Bitset64> empty(tables, 5, 5);
  EXPECT_TRUE(empty.done());
  IterationStats stats;
  std::vector<CandidateRef<Bitset64>> refs;
  empty.generate(SIZE_MAX, refs, stats);
  EXPECT_TRUE(refs.empty());
  EXPECT_EQ(stats.pairs_probed, 0u);
  EXPECT_THROW(
      (PairGen<CheckedI64, Bitset64>(tables, 0, tables.pair_count() + 1)),
      InvalidArgumentError);
}

TEST(ProcessPairRange, SharedTablesMatchLocalTables) {
  // The dynamic scheduler fans worker ranges out against one shared table
  // set; the result must match per-call local tables.
  auto columns = random_columns<DynBitset>(100, 90, 6, 51);
  RowClassification cls;
  const std::size_t row = busiest_row(columns, 90, &cls);
  Matrix<CheckedI64> n = Matrix<CheckedI64>::from_rows(
      {{1, -1, 0, 0, 0, 0}, {0, 1, -1, 0, 0, 0}, {0, 0, 1, -1, 1, -1}});
  // A permissive oracle keeps plenty of accepted columns in play.
  auto accept_all = [](const DynBitset&) { return true; };

  auto run = [&](const PairGenTables<CheckedI64, DynBitset>* shared) {
    IterationStats stats;
    PhaseTimer phases;
    std::vector<FluxColumn<CheckedI64, DynBitset>> accepted;
    const std::uint64_t total = cls.pair_count();
    const std::uint64_t third = total / 3;
    for (std::uint64_t b : {std::uint64_t{0}, third, 2 * third}) {
      const std::uint64_t e = (b == 2 * third) ? total : b + third;
      process_pair_range(columns, row, cls, /*rank=*/9, b, e,
                         /*ref_cap=*/64, accept_all, stats, phases, accepted,
                         shared);
    }
    std::sort(accepted.begin(), accepted.end());
    return std::pair(std::move(accepted), stats);
  };

  PairGenTables<CheckedI64, DynBitset> tables(columns, row, cls.positive,
                                              cls.negative, cls.zero, 9);
  auto [shared_accepted, shared_stats] = run(&tables);
  auto [local_accepted, local_stats] = run(nullptr);
  EXPECT_EQ(shared_accepted, local_accepted);
  EXPECT_EQ(shared_stats.pairs_probed, local_stats.pairs_probed);
  EXPECT_EQ(shared_stats.accepted, local_stats.accepted);
  EXPECT_EQ(shared_stats.pairs_probed, cls.pair_count());
}

TEST(CrossCandidateFilter, MatchesBruteForceOnRandomAntichains) {
  // The banded filter must keep exactly what the all-pairs reference scan
  // keeps, including when removed candidates disqualify their supersets.
  for (std::uint64_t seed : {9u, 27u, 63u}) {
    Rng rng(seed);
    std::vector<FluxColumn<CheckedI64, Bitset64>> accepted;
    for (int c = 0; c < 60; ++c) {
      std::vector<CheckedI64> values(24, CheckedI64(0));
      for (std::size_t k = 0; k < 2 + rng.below(6); ++k)
        values[rng.below(24)] =
            CheckedI64(1 + static_cast<std::int64_t>(rng.below(3)));
      auto column =
          FluxColumn<CheckedI64, Bitset64>::from_values(std::move(values));
      // Distinct supports only (the caller dedups before filtering).
      bool duplicate = false;
      for (const auto& other : accepted)
        duplicate = duplicate || other.support == column.support;
      if (!duplicate) accepted.push_back(std::move(column));
    }

    auto brute = accepted;
    IterationStats brute_stats;
    brute_stats.accepted = brute.size();
    {
      std::size_t kept = 0;
      for (std::size_t c = 0; c < brute.size(); ++c) {
        bool elementary = true;
        for (std::size_t d = 0; d < brute.size() && elementary; ++d) {
          if (d == c) continue;
          if (brute[d].support != brute[c].support &&
              brute[d].support.is_subset_of(brute[c].support))
            elementary = false;
        }
        if (!elementary) {
          --brute_stats.accepted;
          continue;
        }
        if (kept != c) brute[kept] = std::move(brute[c]);
        ++kept;
      }
      brute.resize(kept);
    }

    IterationStats stats;
    stats.accepted = accepted.size();
    cross_candidate_subset_filter(accepted, stats);
    EXPECT_EQ(accepted, brute);
    EXPECT_EQ(stats.accepted, brute_stats.accepted);
  }
}

}  // namespace
}  // namespace elmo
