// Fan-in points that join many workers can only rethrow ONE exception; the
// rest used to vanish in `catch (...) {}` blocks.  This helper makes every
// such drop observable: the suppressed exception is counted on the metrics
// registry ("errors.suppressed") and its what() preserved as a trace
// instant, so a cascade of secondary failures never hides behind the first.
#pragma once

#include <exception>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elmo::obs {

/// Record an exception a fan-in point intentionally drops.  MUST be called
/// from inside a catch block (it rethrows the in-flight exception to read
/// its what()); never throws itself.
inline void record_suppressed_exception(const char* where) noexcept {
  std::string detail = std::string(where) + ": ";
  try {
    throw;  // re-enter the active exception to classify it
  } catch (const std::exception& e) {
    detail += e.what();
  } catch (...) {  // lint:allow(catch-all): recorded below, not swallowed
    detail += "non-standard exception";
  }
  try {
    Registry::global().counter("errors.suppressed").add(1);
    trace_instant("suppressed-exception", "errors", detail);
  } catch (...) {  // lint:allow(catch-all): best-effort reporting must not
    // mask the primary failure currently unwinding at the call site.
  }
}

}  // namespace elmo::obs
