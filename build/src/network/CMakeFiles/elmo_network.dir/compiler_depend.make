# Empty compiler generated dependencies file for elmo_network.
# This may be replaced when dependencies are built.
