#include "obs/progress.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace elmo::obs {

namespace {

// Rates and ETAs divide by elapsed time; a subset can finish within one
// clock tick, so every division guards against (near-)zero denominators
// instead of trusting `elapsed > 0`.
constexpr double kMinElapsedSeconds = 1e-9;

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::string format_count(std::uint64_t value) {
  char buffer[32];
  if (value >= 1'000'000'000ull) {
    std::snprintf(buffer, sizeof buffer, "%.1fG",
                  static_cast<double>(value) / 1e9);
  } else if (value >= 1'000'000ull) {
    std::snprintf(buffer, sizeof buffer, "%.1fM",
                  static_cast<double>(value) / 1e6);
  } else if (value >= 10'000ull) {
    std::snprintf(buffer, sizeof buffer, "%.1fk",
                  static_cast<double>(value) / 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(value));
  }
  return buffer;
}

std::string format_duration(double seconds) {
  char buffer[32];
  if (seconds < 0.0) seconds = 0.0;
  if (seconds < 100.0) {
    std::snprintf(buffer, sizeof buffer, "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    const int minutes = static_cast<int>(seconds) / 60;
    const int rest = static_cast<int>(seconds) % 60;
    std::snprintf(buffer, sizeof buffer, "%dm%02ds", minutes, rest);
  } else {
    const int hours = static_cast<int>(seconds) / 3600;
    const int minutes = (static_cast<int>(seconds) % 3600) / 60;
    std::snprintf(buffer, sizeof buffer, "%dh%02dm", hours, minutes);
  }
  return buffer;
}

ProgressReporter::ProgressReporter(ProgressOptions options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      last_emit_(start_) {
  if (!options_.heartbeat_path.empty()) {
    heartbeat_ = std::fopen(options_.heartbeat_path.c_str(), "wb");
    if (heartbeat_ == nullptr) {
      throw std::runtime_error("cannot open heartbeat file: " +
                               options_.heartbeat_path);
    }
  }
}

ProgressReporter::~ProgressReporter() {
  // A solve that finished inside one heartbeat interval never tripped the
  // throttle, and a caller that aborted may never call finish(); either
  // way the stream still gets its terminal `done` record.
  {
    std::lock_guard lock(mutex_);
    if (!finished_) {
      finished_ = true;
      emit_locked(/*final_line=*/true, /*num_efms=*/0);
    }
  }
  if (heartbeat_ != nullptr) std::fclose(heartbeat_);
}

std::uint64_t ProgressReporter::pairs_so_far() const {
  std::lock_guard lock(mutex_);
  return cumulative_pairs_;
}

void ProgressReporter::on_iteration(const ProgressSample& sample) {
  std::lock_guard lock(mutex_);
  if (finished_) return;
  // Callers either number their iterations (sample.iteration > 0) or let
  // the reporter count calls (sample.iteration == 0).
  iterations_seen_ = sample.iteration > 0
                         ? std::max(iterations_seen_, sample.iteration)
                         : iterations_seen_ + 1;
  cumulative_pairs_ += sample.pairs_probed;
  columns_ = sample.columns;
  const auto now = std::chrono::steady_clock::now();
  if (seconds_between(last_emit_, now) < options_.interval_seconds) return;
  last_emit_ = now;
  emit_locked(/*final_line=*/false, /*num_efms=*/0);
}

void ProgressReporter::on_subset(const std::string& label,
                                 std::uint64_t num_efms, double seconds) {
  std::lock_guard lock(mutex_);
  if (finished_) return;
  const double elapsed =
      seconds_between(start_, std::chrono::steady_clock::now());
  if (options_.print) {
    std::string line = "[elmo]";
    if (!options_.label.empty()) line += " " + options_.label;
    line += " subset " + label + " done: " + format_count(num_efms) +
            " EFMs in " + format_duration(seconds);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (heartbeat_ == nullptr) return;
  JsonValue record = JsonValue::object();
  record.set("kind", JsonValue(std::string("subset")));
  record.set("t_seconds", JsonValue(elapsed));
  record.set("subset", JsonValue(label));
  record.set("num_efms", JsonValue(num_efms));
  record.set("seconds", JsonValue(seconds));
  if (!options_.label.empty()) record.set("label", JsonValue(options_.label));
  write_heartbeat_locked(record);
}

void ProgressReporter::finish(std::uint64_t num_efms) {
  std::lock_guard lock(mutex_);
  if (finished_) return;
  finished_ = true;
  emit_locked(/*final_line=*/true, num_efms);
  if (heartbeat_ != nullptr) std::fflush(heartbeat_);
}

void ProgressReporter::emit_locked(bool final_line, std::uint64_t num_efms) {
  const double elapsed =
      seconds_between(start_, std::chrono::steady_clock::now());
  const double pairs_per_sec =
      elapsed > kMinElapsedSeconds
          ? static_cast<double>(cumulative_pairs_) / elapsed
          : 0.0;

  // Fraction complete: the greater of the pair-based fraction (captures the
  // quadratic cost profile, but the a-priori estimate can overshoot by
  // orders of magnitude) and the iteration-based fraction (coarse but
  // bounded).  Taking the max lets the reliable signal floor the other.
  double fraction = -1.0;
  if (options_.total_pairs_estimate > 0) {
    fraction = std::min(1.0, static_cast<double>(cumulative_pairs_) /
                                 static_cast<double>(
                                     options_.total_pairs_estimate));
  }
  if (options_.total_iterations > 0) {
    fraction = std::max(
        fraction,
        std::min(1.0, static_cast<double>(iterations_seen_) /
                          static_cast<double>(options_.total_iterations)));
  }
  double eta_seconds = -1.0;
  if (!final_line && fraction > 0.0 && elapsed > kMinElapsedSeconds) {
    eta_seconds = elapsed * (1.0 - fraction) / fraction;
  }

  if (options_.print) {
    std::string line = "[elmo]";
    if (!options_.label.empty()) line += " " + options_.label;
    line += " iter " + std::to_string(iterations_seen_);
    if (options_.total_iterations > 0)
      line += "/" + std::to_string(options_.total_iterations);
    line += " | cols " + format_count(columns_);
    line += " | " + format_count(cumulative_pairs_) + " pairs";
    if (fraction >= 0.0) {
      char pct[16];
      std::snprintf(pct, sizeof pct, " (%.1f%%)", fraction * 100.0);
      line += pct;
    }
    line += " | " + format_count(static_cast<std::uint64_t>(pairs_per_sec)) +
            " pairs/s";
    if (final_line) {
      line += " | done: " + format_count(num_efms) + " EFMs in " +
              format_duration(elapsed);
    } else if (eta_seconds >= 0.0) {
      line += " | ETA " + format_duration(eta_seconds);
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  }

  if (heartbeat_ != nullptr) {
    JsonValue record = JsonValue::object();
    record.set("t_seconds", JsonValue(elapsed));
    record.set("iteration", JsonValue(iterations_seen_));
    if (options_.total_iterations > 0)
      record.set("total_iterations", JsonValue(options_.total_iterations));
    record.set("columns", JsonValue(columns_));
    record.set("pairs_probed", JsonValue(cumulative_pairs_));
    if (options_.total_pairs_estimate > 0)
      record.set("total_pairs_estimate",
                 JsonValue(options_.total_pairs_estimate));
    record.set("pairs_per_sec", JsonValue(pairs_per_sec));
    if (eta_seconds >= 0.0)
      record.set("eta_seconds", JsonValue(eta_seconds));
    if (!options_.label.empty())
      record.set("label", JsonValue(options_.label));
    // Resource gauges: current/peak RSS straight from /proc, governor
    // usage and spill volume from the injected sources (when wired).
    record.set("rss_bytes", JsonValue(process_current_rss_bytes()));
    record.set("peak_rss_bytes", JsonValue(process_peak_rss_bytes()));
    if (options_.mem_usage_source)
      record.set("mem_usage_bytes", JsonValue(options_.mem_usage_source()));
    if (options_.spill_bytes_source)
      record.set("spill_bytes", JsonValue(options_.spill_bytes_source()));
    record.set("done", JsonValue(final_line));
    if (final_line) record.set("num_efms", JsonValue(num_efms));
    write_heartbeat_locked(record);
  }
}

void ProgressReporter::write_heartbeat_locked(const JsonValue& record) {
  const std::string json = record.dump();
  std::fwrite(json.data(), 1, json.size(), heartbeat_);
  std::fputc('\n', heartbeat_);
  std::fflush(heartbeat_);
}

}  // namespace elmo::obs
