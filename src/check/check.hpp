// check — correctness facade.
//
// The check module is cross-cutting: any layer may use it, but (enforced
// by elmo_analyze's include-graph pass) only through its facade headers.
// There are three sanctioned entry points:
//
//   check/check.hpp      this header — the full diagnostics surface,
//                        including the InvariantAuditor.  Because the
//                        auditor re-derives nullspace invariants it pulls
//                        linalg/nullspace headers, so in practice only
//                        layer-2+ code (core, mpsim, elmo) includes it.
//   check/contracts.hpp  dependency-free ELMO_ENSURE/ELMO_INVARIANT
//                        macros — usable from any layer, including the
//                        leaf utilities the auditor itself builds on.
//   check/lockorder.hpp  dependency-free ELMO_LOCK_ORDER instrumentation
//                        — usable from any layer that owns a mutex.
#pragma once

#include "check/audit.hpp"      // lint:allow(unused-include) facade re-export
#include "check/contracts.hpp"  // lint:allow(unused-include) facade re-export
#include "check/lockorder.hpp"  // lint:allow(unused-include) facade re-export
