file(REMOVE_RECURSE
  "CMakeFiles/elmo_io.dir/efm_writer.cpp.o"
  "CMakeFiles/elmo_io.dir/efm_writer.cpp.o.d"
  "CMakeFiles/elmo_io.dir/table.cpp.o"
  "CMakeFiles/elmo_io.dir/table.cpp.o.d"
  "libelmo_io.a"
  "libelmo_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
