// Seeded violations for the error-path/RAII pass.  Never compiled —
// only analyzed.
#include <string>

namespace fixture {

struct ResourceError {
  explicit ResourceError(const std::string& what);
};
struct CancelledError {
  explicit CancelledError(const std::string& what);
};

void begin_span(const char* name);
void end_span();
void open_spill_block(const char* path);
void close_spill_block();
bool risky();

// raii-pair: the span opened here is never closed, on any path.
inline void leaky_span() {
  begin_span("merge");
  if (risky()) return;
}

// raii-pair across one call level: the helper closes a block the caller
// opened, but only one of the two opens is balanced.
inline void close_helper() { close_spill_block(); }
inline void double_open() {
  open_spill_block("a.bin");
  open_spill_block("b.bin");
  close_helper();
}

// unhandled-throw: nobody on any caller path catches ResourceError.
inline void deep_throw() {
  throw ResourceError("spill budget exhausted");
}
inline void middle() { deep_throw(); }
inline void top() { middle(); }

// unhandled-throw: CancelledError thrown and the only caller catches a
// different type.
inline void cancel() { throw CancelledError("stop requested"); }
inline void shepherd() {
  try {
    cancel();
  } catch (const ResourceError&) {
  }
}

}  // namespace fixture
