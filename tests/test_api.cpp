// End-to-end tests of the public compute_efms API.
#include "core/api.hpp"

#include <gtest/gtest.h>

#include "efm_test_util.hpp"
#include "io/efm_writer.hpp"
#include "models/random_network.hpp"
#include "models/toy.hpp"
#include "nullspace/efm.hpp"

namespace elmo {
namespace {

TEST(Api, ToyNetworkSerial) {
  Network net = models::toy_network();
  auto result = compute_efms(net);
  EXPECT_EQ(result.num_modes(), 8u);
  EXPECT_EQ(result.reaction_names.size(), 9u);
  EXPECT_EQ(result.modes, canonical_modes_from_i64(models::toy_efms_paper(),
                                                   net.reversibility()));
  EXPECT_FALSE(result.used_bigint);
  EXPECT_EQ(result.reduced_reactions, 8u);
  EXPECT_EQ(result.reduced_metabolites, 4u);
  EXPECT_GE(result.seconds, 0.0);
}

TEST(Api, AllThreeAlgorithmsAgree) {
  Network net = models::toy_network();
  EfmOptions serial;
  auto a = compute_efms(net, serial);

  EfmOptions parallel;
  parallel.algorithm = Algorithm::kCombinatorialParallel;
  parallel.num_ranks = 3;
  auto b = compute_efms(net, parallel);

  EfmOptions combined;
  combined.algorithm = Algorithm::kCombined;
  combined.num_ranks = 2;
  combined.partition_reactions = {"r6r", "r8r"};
  auto c = compute_efms(net, combined);

  EfmOptions partitioned;
  partitioned.algorithm = Algorithm::kPartitioned;
  partitioned.num_ranks = 3;
  auto d = compute_efms(net, partitioned);

  EXPECT_EQ(a.modes, b.modes);
  EXPECT_EQ(a.modes, c.modes);
  EXPECT_EQ(a.modes, d.modes);
  EXPECT_EQ(c.subsets.size(), 4u);
  EXPECT_GT(b.message_bytes, 0u);
  EXPECT_GT(d.message_bytes, 0u);
}

TEST(Api, ForceBigIntGivesSameModes) {
  Network net = models::toy_network();
  EfmOptions options;
  options.force_bigint = true;
  auto result = compute_efms(net, options);
  EXPECT_TRUE(result.used_bigint);
  EXPECT_EQ(result.modes, compute_efms(net).modes);
}

TEST(Api, PartitionOnMergedReactionWorksViaRepresentative) {
  // r9 merges into r3 during compression; partitioning on r9 must resolve
  // to the representative's reduced column.  r3 is irreversible though, so
  // this must throw the reversibility requirement - which proves the name
  // mapping went through compression correctly.
  Network net = models::toy_network();
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.partition_reactions = {"r9"};
  EXPECT_THROW(compute_efms(net, options), InvalidArgumentError);
}

TEST(Api, PartitionOnRemovedReactionThrows) {
  // A dead-end reaction is removed by compression entirely.
  Network net = models::toy_network();
  net.add_metabolite("Orphan");
  net.add_reaction("dead", true, {{"A", -1}, {"Orphan", 1}});
  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.partition_reactions = {"dead"};
  EXPECT_THROW(compute_efms(net, options), InvalidArgumentError);
}

TEST(Api, OverflowTriggersTransparentBigIntFallback) {
  // A chain of pairwise-coprime ~3e6 coefficients whose primitive kernel
  // vector has entries ~2.7e19 > 2^63.  The E/F cofactor pair keeps every
  // column's gcd at 1 so compression cannot rescale the primes away.
  Network net;
  for (const char* m : {"A", "B", "C", "E", "F"}) net.add_metabolite(m);
  net.add_metabolite("Xext", true);
  net.add_metabolite("Yext", true);
  net.add_reaction("r1", false,
                   {{"Xext", -1}, {"E", -1}, {"A", 3000017}, {"F", 1}});
  net.add_reaction("r2", false, {{"A", -3000029}, {"B", 3000047}});
  net.add_reaction("r3", false, {{"B", -3000061}, {"C", 3000073}});
  net.add_reaction("r4", false, {{"C", -3000083}, {"Yext", 1}});
  net.add_reaction("r5", false, {{"F", -1}, {"E", 1}});

  EfmOptions options;
  options.compression.kernel_coupling = false;  // keep the big numbers
  options.compression.couple_two_reaction_metabolites = false;
  auto result = compute_efms(net, options);
  EXPECT_TRUE(result.used_bigint);
  EXPECT_TRUE(result.stats.bigint_fallback);
  check_efm_invariants(net, result.modes);
  // The exact same modes come out when BigInt is forced from the start.
  EfmOptions forced = options;
  forced.force_bigint = true;
  EXPECT_EQ(result.modes, compute_efms(net, forced).modes);
}

TEST(Api, MemoryBudgetPropagates) {
  Network net = models::toy_network();
  EfmOptions options;
  options.algorithm = Algorithm::kCombinatorialParallel;
  options.num_ranks = 2;
  options.memory_budget_per_rank = 32;
  EXPECT_THROW(compute_efms(net, options), MemoryBudgetError);
}

TEST(Api, HybridThreadsThroughApi) {
  Network net = models::toy_network();
  EfmOptions options;
  options.algorithm = Algorithm::kCombinatorialParallel;
  options.num_ranks = 2;
  options.threads_per_rank = 2;
  auto result = compute_efms(net, options);
  EXPECT_EQ(result.modes, compute_efms(net).modes);
}

TEST(Api, OnIterationCallbackFires) {
  Network net = models::toy_network();
  EfmOptions options;
  int iterations = 0;
  options.on_iteration = [&](const IterationStats&) { ++iterations; };
  compute_efms(net, options);
  EXPECT_EQ(iterations, 4);  // the paper's four processed rows
}

TEST(Api, RandomNetworksSatisfyInvariantsThroughApi) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    models::RandomNetworkSpec spec;
    spec.seed = seed;
    spec.num_metabolites = 5 + seed % 3;
    Network net = models::random_network(spec);
    auto result = compute_efms(net);
    check_efm_invariants(net, result.modes);
  }
}

TEST(Api, WritersRenderResults) {
  Network net = models::toy_network();
  auto result = compute_efms(net);
  auto text = efms_to_text(result.modes, result.reaction_names);
  auto csv = efms_to_csv(result.modes, result.reaction_names);
  // 9 reaction rows in the text form; 1 header + 8 mode rows in CSV.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 9);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 9);
  EXPECT_NE(text.find("r6r"), std::string::npos);
  EXPECT_NE(csv.find("r8r"), std::string::npos);
}

}  // namespace
}  // namespace elmo
