// Pass 2 — lock discipline.
//
// Extracts the STATIC mutex acquisition graph: every
// lock_guard/unique_lock/scoped_lock site, attributed to its enclosing
// function via a lightweight scope tracker; an edge A -> B is recorded
// when guard B is constructed while guard A's scope is still open —
// directly, or through a call to another indexed function that acquires B
// (one-level interprocedural propagation with memoized transitive
// acquisition sets, matched by name).
//
// Lock identity: the string from an adjacent ELMO_LOCK_ORDER("name")
// instrumentation macro when present (those names are what the runtime
// lockdep graph in src/check/lockorder.hpp records); otherwise a synthetic
// `file-stem.expr` id derived from the mutex expression.
//
// Rules:
//   lock-cycle        the static acquisition graph has a cycle — an
//                     inconsistent lock order that runtime lockdep only
//                     catches on a run that exercises both orders
//   lock-unexercised  a statically-possible acquisition order between two
//                     ELMO_LOCK_ORDER-instrumented locks that a supplied
//                     runtime edge dump (--lockdep-edges) never saw: the
//                     runtime tests have a coverage hole
//   lock-blocking     a lock held across a blocking call (mpsim
//                     recv/barrier/reduce, thread join, sleep) — the
//                     classic convoy/deadlock shape.  Calls that take the
//                     guard itself as an argument (condition_variable
//                     wait) release the lock and are exempt.
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/lexer.hpp"

namespace elmo_analyze {

namespace {

bool is_guard_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock";
}

bool is_blocking_call(const std::string& s) {
  static const std::set<std::string> kBlocking = {
      "recv",       "barrier",   "reduce",      "allgather",
      "gather",     "broadcast", "send_recv",   "join",
      "sleep_for",  "sleep_until", "wait_for_all",
  };
  return kBlocking.count(s) != 0;
}

bool is_keywordish(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",    "for",    "while",  "switch", "return", "sizeof", "catch",
      "new",   "delete", "throw",  "else",   "do",     "case",   "not",
      "and",   "or",     "assert", "static_assert", "defined", "alignof",
      "decltype", "noexcept", "operator",
  };
  return kKeywords.count(s) != 0;
}

struct GuardSite {
  std::string lock_id;     // ELMO_LOCK_ORDER name or synthetic id
  bool named = false;      // true when from ELMO_LOCK_ORDER
  std::string var;         // guard variable name ("" for temporaries)
  std::size_t line = 0;
  std::string function;    // qualified enclosing function
  std::string file;
};

struct StaticEdge {
  std::string from;
  std::string to;
  std::string file;
  std::size_t line = 0;
  std::string function;
  bool from_named = false;
  bool to_named = false;
  std::string via;  // callee name for interprocedural edges ("" = direct)
};

struct CallSite {
  std::string callee;
  std::vector<std::string> held;        // lock ids held at the call
  std::vector<bool> held_named;
  std::size_t line = 0;
  std::string function;
  std::string file;
  bool passes_guard = false;  // a held guard variable appears in the args
};

/// Per-file extraction state, appended into project-wide tables.
struct LockModel {
  std::vector<GuardSite> guards;
  std::vector<StaticEdge> edges;
  std::vector<CallSite> calls;
  // function -> lock ids it acquires directly (any nesting).
  std::map<std::string, std::set<std::string>> fn_acquires;
  std::map<std::string, bool> lock_named;
};

/// ELMO_LOCK_ORDER("name") on raw line `line` (1-based) or up to two lines
/// above — the instrumentation convention puts the macro directly before
/// the guard.
std::string nearby_lock_name(const SourceFile& file, std::size_t line) {
  const std::size_t idx = line - 1;
  for (std::size_t back = 0; back <= 2 && back <= idx; ++back) {
    const std::string& raw = file.raw_lines[idx - back];
    std::size_t pos = raw.find("ELMO_LOCK_ORDER");
    if (pos == std::string::npos) continue;
    std::size_t open = raw.find('"', pos);
    if (open == std::string::npos) continue;
    std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    return raw.substr(open + 1, close - open - 1);
  }
  return std::string();
}

std::string synth_lock_id(const SourceFile& file, const std::string& expr) {
  std::size_t slash = file.path.rfind('/');
  std::string base =
      slash == std::string::npos ? file.path : file.path.substr(slash + 1);
  std::size_t dot = base.rfind('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return base + "." + expr;
}

/// Normalized text of tokens [first, last): identifiers and punctuation
/// joined without spaces, `this->` dropped.
std::string expr_text(const std::vector<Token>& toks, std::size_t first,
                      std::size_t last) {
  std::string out;
  for (std::size_t i = first; i < last; ++i) {
    if (toks[i].is("this") && i + 1 < last && toks[i + 1].is("->")) {
      ++i;
      continue;
    }
    out += toks[i].text;
  }
  return out;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  int depth = 0;  // brace depth AFTER the opening brace
};

struct HeldGuard {
  std::string lock_id;
  bool named = false;
  std::string var;
  int depth = 0;  // brace depth the guard lives at
};

void analyze_file_locks(const SourceFile& file, LockModel& model) {
  const std::vector<Token> toks = lex(file.stripped);
  std::vector<Scope> scopes;
  std::vector<HeldGuard> held;
  int depth = 0;

  auto current_function = [&]() -> std::string {
    for (std::size_t i = scopes.size(); i-- > 0;) {
      if (scopes[i].kind == Scope::Kind::kFunction) return scopes[i].name;
    }
    return std::string();
  };
  auto qualify = [&](const std::string& name) {
    std::string out;
    for (const Scope& s : scopes) {
      if (s.kind == Scope::Kind::kNamespace || s.kind == Scope::Kind::kClass) {
        if (!s.name.empty()) out += s.name + "::";
      }
    }
    return out + name;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.is("{")) {
      Scope sc;
      sc.depth = depth + 1;
      // Classify by look-back.
      if (i >= 2 && toks[i - 1].ident() && toks[i - 2].is("namespace")) {
        sc.kind = Scope::Kind::kNamespace;
        sc.name = toks[i - 1].text;
      } else if (i >= 1 && toks[i - 1].is("namespace")) {
        sc.kind = Scope::Kind::kNamespace;  // anonymous
      } else {
        // Scan back over qualifiers to a ')' (function) or a class head.
        std::size_t j = i;
        while (j > 0) {
          const Token& b = toks[j - 1];
          if (b.ident() &&
              (b.text == "const" || b.text == "noexcept" ||
               b.text == "override" || b.text == "final" ||
               b.text == "try" || b.text == "mutable")) {
            --j;
            continue;
          }
          // Trailing return type `-> Type` (possibly qualified/templated).
          if (b.ident() || b.is("::") || b.is(">") || b.is("*") || b.is("&") ||
              b.is("->")) {
            --j;
            continue;
          }
          break;
        }
        if (j > 0 && toks[j - 1].is(")")) {
          const std::size_t open = match_backward(toks, j - 1);
          if (open != std::string::npos && open > 0 &&
              toks[open - 1].ident() && !is_keywordish(toks[open - 1].text) &&
              !toks[open - 1].is("operator")) {
            sc.kind = Scope::Kind::kFunction;
            // Qualified name: absorb leading `A::B::name`.
            std::string name = toks[open - 1].text;
            std::size_t q = open - 1;
            while (q >= 2 && toks[q - 1].is("::") && toks[q - 2].ident()) {
              name = toks[q - 2].text + "::" + name;
              q -= 2;
            }
            sc.name = current_function().empty() ? qualify(name) : name;
          }
        }
        if (sc.kind == Scope::Kind::kBlock) {
          // Class head: `class/struct NAME ... {` without intervening ';'.
          for (std::size_t k = i; k-- > 0;) {
            const Token& b = toks[k];
            if (b.is(";") || b.is("}") || b.is("{")) break;
            if (b.ident() && (b.text == "class" || b.text == "struct")) {
              if (k + 1 < i && toks[k + 1].ident()) {
                sc.kind = Scope::Kind::kClass;
                sc.name = toks[k + 1].text;
              }
              break;
            }
          }
        }
      }
      scopes.push_back(sc);
      ++depth;
      continue;
    }
    if (t.is("}")) {
      while (!held.empty() && held.back().depth >= depth) held.pop_back();
      while (!scopes.empty() && scopes.back().depth >= depth) {
        scopes.pop_back();
      }
      if (depth > 0) --depth;
      continue;
    }

    const std::string fn = current_function();
    if (fn.empty()) continue;

    // Early release: `guard_var.unlock()`.
    if (t.ident() && i + 3 < toks.size() && toks[i + 1].is(".") &&
        toks[i + 2].is("unlock") && toks[i + 3].is("(")) {
      for (std::size_t g = held.size(); g-- > 0;) {
        if (held[g].var == t.text) {
          held.erase(held.begin() + static_cast<std::ptrdiff_t>(g));
          break;
        }
      }
    }

    // Guard construction: [std ::] guard_type [<...>] var ( args ) ;
    if (t.ident() && is_guard_type(t.text)) {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].is("<")) {
        int tdepth = 0;
        while (j < toks.size()) {
          if (toks[j].is("<")) ++tdepth;
          if (toks[j].is(">")) {
            --tdepth;
            if (tdepth == 0) {
              ++j;
              break;
            }
          }
          if (toks[j].is(">>")) {
            tdepth -= 2;
            if (tdepth <= 0) {
              ++j;
              break;
            }
          }
          ++j;
        }
      }
      std::string var;
      if (j < toks.size() && toks[j].ident()) {
        var = toks[j].text;
        ++j;
      }
      if (j >= toks.size() || !toks[j].is("(") || var.empty()) continue;
      const std::size_t close = match_forward(toks, j);
      if (close == std::string::npos) continue;
      // Split top-level commas; drop tag arguments and deferred locks.
      std::vector<std::string> args;
      {
        std::size_t arg_start = j + 1;
        int pdepth = 0;
        for (std::size_t k = j + 1; k <= close; ++k) {
          if (toks[k].is("(") || toks[k].is("[")) ++pdepth;
          if (toks[k].is(")") || toks[k].is("]")) --pdepth;
          if ((toks[k].is(",") && pdepth == 0) || k == close) {
            if (k > arg_start) {
              args.push_back(expr_text(toks, arg_start, k));
            }
            arg_start = k + 1;
          }
        }
      }
      bool deferred = false;
      std::vector<std::string> mutexes;
      for (const std::string& a : args) {
        if (a.find("defer_lock") != std::string::npos) deferred = true;
        if (a.find("defer_lock") != std::string::npos ||
            a.find("adopt_lock") != std::string::npos ||
            a.find("try_to_lock") != std::string::npos) {
          continue;
        }
        mutexes.push_back(a);
      }
      if (deferred || mutexes.empty()) {
        i = close;
        continue;
      }
      const std::string annotated = nearby_lock_name(file, t.line);
      for (std::size_t m = 0; m < mutexes.size(); ++m) {
        GuardSite site;
        site.named = !annotated.empty();
        site.lock_id = site.named && m == 0
                           ? annotated
                           : synth_lock_id(file, mutexes[m]);
        if (site.named && m > 0) site.named = false;
        site.var = var;
        site.line = t.line;
        site.function = fn;
        site.file = file.path;
        for (const HeldGuard& h : held) {
          if (h.lock_id == site.lock_id) continue;
          model.edges.push_back({h.lock_id, site.lock_id, file.path, t.line,
                                 fn, h.named, site.named, ""});
        }
        held.push_back({site.lock_id, site.named, var, depth});
        model.fn_acquires[fn].insert(site.lock_id);
        model.lock_named[site.lock_id] = site.named;
        model.guards.push_back(site);
      }
      i = close;
      continue;
    }

    // Call site: IDENT '(' — record what is held at the call.
    if (t.ident() && i + 1 < toks.size() && toks[i + 1].is("(") &&
        !is_keywordish(t.text) && !is_guard_type(t.text)) {
      if (held.empty()) continue;
      const std::size_t close = match_forward(toks, i + 1);
      CallSite call;
      call.callee = t.text;
      call.line = t.line;
      call.function = fn;
      call.file = file.path;
      for (const HeldGuard& h : held) {
        call.held.push_back(h.lock_id);
        call.held_named.push_back(h.named);
        if (close != std::string::npos) {
          for (std::size_t k = i + 2; k < close; ++k) {
            if (toks[k].ident() && toks[k].text == h.var) {
              call.passes_guard = true;
            }
          }
        }
      }
      model.calls.push_back(std::move(call));
    }
  }
}

}  // namespace

void pass_lock(const Project& project, const Options& opts,
               std::vector<Finding>& findings) {
  LockModel model;
  for (const SourceFile& f : project.files) analyze_file_locks(f, model);

  // Transitive acquisition sets per function (memoized DFS over the
  // name-matched call graph).
  std::map<std::string, std::set<std::string>> callee_map;
  for (const CallSite& c : model.calls) {
    callee_map[c.function].insert(c.callee);
  }
  // Also include calls made while NOT holding locks: rebuild from guards
  // is not enough, so conservatively treat fn_acquires as the base and
  // propagate through recorded call sites only (calls with locks held are
  // what matters for edges; transitive acquisition only needs the callee's
  // own base set, recursively).
  std::map<std::string, std::set<std::string>> trans;
  std::set<std::string> visiting;
  struct Trans {
    std::map<std::string, std::set<std::string>>& fn_acquires;
    std::map<std::string, std::set<std::string>>& callee_map;
    std::map<std::string, std::set<std::string>>& trans;
    std::set<std::string>& visiting;
    const std::set<std::string>& resolve(const std::string& fn) {
      auto it = trans.find(fn);
      if (it != trans.end()) return it->second;
      if (visiting.count(fn) != 0) {
        static const std::set<std::string> kEmpty;
        return kEmpty;  // recursion cycle: stop
      }
      visiting.insert(fn);
      std::set<std::string> acc = fn_acquires[fn];
      // Match callees by both bare and suffix-qualified name.
      for (const auto& entry : callee_map[fn]) {
        for (const auto& candidate : fn_acquires) {
          const std::string& name = candidate.first;
          const bool match =
              name == entry ||
              (name.size() > entry.size() &&
               name.compare(name.size() - entry.size(), entry.size(),
                            entry) == 0 &&
               name[name.size() - entry.size() - 1] == ':');
          if (match) {
            const std::set<std::string>& sub = resolve(name);
            acc.insert(sub.begin(), sub.end());
          }
        }
      }
      visiting.erase(fn);
      return trans.emplace(fn, std::move(acc)).first->second;
    }
  } resolver{model.fn_acquires, callee_map, trans, visiting};

  // Interprocedural edges: held H at a call whose callee transitively
  // acquires L => H -> L.
  std::vector<StaticEdge> all_edges = model.edges;
  for (const CallSite& c : model.calls) {
    for (const auto& candidate : model.fn_acquires) {
      const std::string& name = candidate.first;
      const bool match =
          name == c.callee ||
          (name.size() > c.callee.size() &&
           name.compare(name.size() - c.callee.size(), c.callee.size(),
                        c.callee) == 0 &&
           name[name.size() - c.callee.size() - 1] == ':');
      if (!match) continue;
      for (const std::string& acquired : resolver.resolve(name)) {
        for (std::size_t h = 0; h < c.held.size(); ++h) {
          if (c.held[h] == acquired) continue;
          StaticEdge e;
          e.from = c.held[h];
          e.to = acquired;
          e.file = c.file;
          e.line = c.line;
          e.function = c.function;
          e.from_named = c.held_named[h];
          e.to_named = model.lock_named[acquired];
          e.via = c.callee;
          all_edges.push_back(std::move(e));
        }
      }
    }
  }

  // Deduplicate edges by (from, to), keeping the first site.
  std::map<std::pair<std::string, std::string>, StaticEdge> edge_map;
  for (const StaticEdge& e : all_edges) {
    edge_map.emplace(std::make_pair(e.from, e.to), e);
  }

  // ---- lock-cycle: DFS over the static graph ----
  {
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& entry : edge_map) {
      adj[entry.first.first].push_back(entry.first.second);
    }
    std::map<std::string, int> color;
    std::vector<std::string> path;
    struct Dfs {
      std::map<std::string, std::vector<std::string>>& adj;
      std::map<std::string, int>& color;
      std::vector<std::string>& path;
      std::map<std::pair<std::string, std::string>, StaticEdge>& edge_map;
      std::vector<Finding>& findings;
      void visit(const std::string& v) {
        color[v] = 1;
        path.push_back(v);
        for (const std::string& to : adj[v]) {
          if (color[to] == 1) {
            std::string cycle;
            bool in_cycle = false;
            for (const std::string& p : path) {
              if (p == to) in_cycle = true;
              if (in_cycle) cycle += p + " -> ";
            }
            cycle += to;
            const StaticEdge& site = edge_map.at({v, to});
            findings.push_back(
                {"lock", "lock-cycle", site.file, site.line,
                 "lock-order cycle: " + cycle + " (closing edge in " +
                     site.function +
                     (site.via.empty() ? "" : " via call to " + site.via) +
                     ")",
                 false});
          } else if (color[to] == 0) {
            visit(to);
          }
        }
        path.pop_back();
        color[v] = 2;
      }
    } dfs{adj, color, path, edge_map, findings};
    for (const auto& entry : adj) {
      if (color[entry.first] == 0) dfs.visit(entry.first);
    }
  }

  // ---- lock-unexercised: diff named static edges against a runtime
  // lockdep dump ----
  if (!opts.lockdep_edges_path.empty()) {
    std::set<std::pair<std::string, std::string>> runtime;
    std::ifstream in(opts.lockdep_edges_path);
    std::string line;
    while (in && std::getline(in, line)) {
      const std::size_t arrow = line.find(" -> ");
      if (arrow == std::string::npos) continue;
      std::string from = line.substr(0, arrow);
      std::string to = line.substr(arrow + 4);
      while (!to.empty() && (to.back() == '\r' || to.back() == ' ')) {
        to.pop_back();
      }
      runtime.emplace(from, to);
    }
    for (const auto& entry : edge_map) {
      const StaticEdge& e = entry.second;
      if (!e.from_named || !e.to_named) continue;
      if (runtime.count({e.from, e.to}) != 0) continue;
      findings.push_back(
          {"lock", "lock-unexercised", e.file, e.line,
           "statically-possible acquisition order " + e.from + " -> " + e.to +
               " (in " + e.function +
               (e.via.empty() ? "" : " via call to " + e.via) +
               ") was never exercised by the runtime lockdep graph — the "
               "runtime tests have a lock-order coverage hole",
           false});
    }
  }

  // ---- lock-blocking: a lock held across a blocking call ----
  for (const CallSite& c : model.calls) {
    if (!is_blocking_call(c.callee) || c.passes_guard || c.held.empty())
      continue;
    const std::size_t file_idx = [&] {
      for (std::size_t i = 0; i < project.files.size(); ++i) {
        if (project.files[i].path == c.file) return i;
      }
      return std::size_t{0};
    }();
    if (project.files[file_idx].allows(c.line, "lock-blocking")) continue;
    std::string held_list;
    for (std::size_t h = 0; h < c.held.size(); ++h) {
      if (h != 0) held_list += ", ";
      held_list += c.held[h];
    }
    findings.push_back(
        {"lock", "lock-blocking", c.file, c.line,
         "lock(s) " + held_list + " held across blocking call '" + c.callee +
             "' in " + c.function +
             " — release before blocking or annotate "
             "lint:allow(lock-blocking)",
         false});
  }
}

}  // namespace elmo_analyze
