// Per-run report document ("report.json").
//
// A SolveReport is the machine-readable record of one EFM computation:
// configuration, totals, per-phase wall-clock, per-rank communication and
// timing breakdowns, the divide-and-conquer subset table, the per-iteration
// column-growth history, and a timeline of notable events (faults, retries,
// re-splits, checkpoints).  elmo_cli --report writes one after every solve;
// tests parse it back and cross-check the totals against the returned
// SolveStats.
//
// The structs here are deliberately neutral (plain maps and vectors of
// numbers): obs sits below nullspace/core in the layering, so the adapter
// that fills a SolveReport from an EfmResult lives up in core/api.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flow.hpp"
#include "obs/json.hpp"

namespace elmo::obs {

/// One simulated MPI rank's contribution (Algorithms 2-4).
struct RankEntry {
  int rank = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t collectives = 0;
  std::uint64_t memory_peak_bytes = 0;
  /// Candidate bytes this rank wrote out-of-core (0 when nothing spilled).
  std::uint64_t spill_bytes = 0;
  /// Blocked-wait breakdown from the mpsim runtime (microseconds).
  std::uint64_t wait_data_us = 0;
  std::uint64_t wait_barrier_us = 0;
  std::uint64_t wait_straggler_us = 0;
  /// Peak undelivered-message depth of this rank's inbox.
  std::uint64_t max_queue_depth = 0;
  std::map<std::string, double> phase_seconds;
};

/// One outer-loop iteration of the nullspace algorithm (column-growth
/// history; mirrors nullspace::IterationStats field for field).
struct IterationEntry {
  std::int64_t row = 0;
  std::uint64_t positives = 0;
  std::uint64_t negatives = 0;
  std::uint64_t pairs_probed = 0;
  std::uint64_t pretest_survivors = 0;
  std::uint64_t duplicates_removed = 0;
  std::uint64_t rank_tests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t columns_after = 0;
};

/// A notable moment in the run: fault injected, retry, re-split,
/// checkpoint written, subset resumed...
struct TimelineEvent {
  double t_seconds = 0.0;
  std::string kind;
  std::string detail;
};

/// One divide-and-conquer subset (Algorithm 3).
struct SubsetEntry {
  std::string label;
  std::uint64_t num_efms = 0;
  double seconds = 0.0;
  int attempts = 1;
  int extra_splits = 0;
  bool resumed = false;
  std::map<std::string, std::uint64_t> totals;
  std::map<std::string, double> phase_seconds;
  std::vector<RankEntry> ranks;
};

struct SolveReport {
  // Configuration.
  std::string network;
  std::string algorithm;
  int num_ranks = 1;
  std::map<std::string, std::string> config;

  // Outcome.
  std::uint64_t num_efms = 0;
  double seconds = 0.0;

  // Solver totals (pairs_probed, rank_tests, accepted, ...), kept as a map
  // so the report does not chase every SolveStats field addition.
  std::map<std::string, std::uint64_t> totals;
  std::uint64_t peak_columns = 0;
  std::uint64_t peak_matrix_bytes = 0;
  bool bigint_fallback = false;
  std::map<std::string, double> phase_seconds;

  // Breakdowns.
  std::vector<RankEntry> ranks;
  std::vector<SubsetEntry> subsets;
  std::vector<IterationEntry> iterations;
  std::vector<TimelineEvent> events;

  // Process peak RSS at report time (VmHWM; 0 where unavailable).
  std::uint64_t peak_rss_bytes = 0;
  // Current RSS at report time (VmRSS; 0 where unavailable).
  std::uint64_t rss_bytes = 0;

  // Message-flow, wait-class, and critical-path attribution (the "flow"
  // object in the JSON); see obs/flow.hpp.  Filled by analyze_flow() after
  // the solve; default-constructed (all zeros) when never analyzed.
  FlowSummary flow;

  // Resource-governance ledger ("resource" object in the JSON): configured
  // --mem-limit, peak bytes charged to the MemoryGovernor, and total
  // out-of-core spill volume.  All 0 for ungoverned runs with no spill.
  std::uint64_t mem_limit_bytes = 0;
  std::uint64_t mem_peak_bytes = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_blocks = 0;

  [[nodiscard]] JsonValue to_json() const;

  /// Write to_json().dump(2) to `path`; throws std::runtime_error on I/O
  /// failure.
  void write(const std::string& path) const;
};

/// Best-effort process peak resident set size in bytes (Linux VmHWM from
/// /proc/self/status); returns 0 when the value cannot be determined.
[[nodiscard]] std::uint64_t process_peak_rss_bytes();

/// Best-effort CURRENT process resident set size in bytes (Linux VmRSS
/// from /proc/self/status); returns 0 when the value cannot be determined.
[[nodiscard]] std::uint64_t process_current_rss_bytes();

}  // namespace elmo::obs
