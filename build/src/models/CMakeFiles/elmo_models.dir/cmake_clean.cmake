file(REMOVE_RECURSE
  "CMakeFiles/elmo_models.dir/ecoli_core.cpp.o"
  "CMakeFiles/elmo_models.dir/ecoli_core.cpp.o.d"
  "CMakeFiles/elmo_models.dir/random_network.cpp.o"
  "CMakeFiles/elmo_models.dir/random_network.cpp.o.d"
  "CMakeFiles/elmo_models.dir/toy.cpp.o"
  "CMakeFiles/elmo_models.dir/toy.cpp.o.d"
  "CMakeFiles/elmo_models.dir/yeast.cpp.o"
  "CMakeFiles/elmo_models.dir/yeast.cpp.o.d"
  "libelmo_models.a"
  "libelmo_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
