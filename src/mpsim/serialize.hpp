// Serialisation of flux columns for the simulated message-passing layer.
//
// Candidate EFMs exchanged in Communicate&Merge are encoded exactly as an
// MPI implementation would pack them; message sizes reported by the
// communicator therefore reflect real traffic volumes.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/scalar.hpp"
#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "mpsim/communicator.hpp"
#include "nullspace/flux_column.hpp"
#include "support/error.hpp"

namespace elmo::mpsim {

namespace detail {

inline void put_u64(Payload& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

inline std::uint64_t get_u64(const std::uint8_t*& cursor,
                             const std::uint8_t* end) {
  if (end - cursor < 8) throw ParseError("mpsim: truncated u64");
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b)
    v |= static_cast<std::uint64_t>(*cursor++) << (8 * b);
  return v;
}

// ---- scalar encoding ----
inline void put_scalar(Payload& out, const CheckedI64& v) {
  put_u64(out, static_cast<std::uint64_t>(v.value()));
}
inline void put_scalar(Payload& out, const BigInt& v) { v.serialize(out); }
inline void put_scalar(Payload& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline void get_scalar(const std::uint8_t*& cursor, const std::uint8_t* end,
                       CheckedI64& v) {
  v = CheckedI64(static_cast<std::int64_t>(get_u64(cursor, end)));
}
inline void get_scalar(const std::uint8_t*& cursor, const std::uint8_t* end,
                       BigInt& v) {
  v = BigInt::deserialize(cursor, end);
}
inline void get_scalar(const std::uint8_t*& cursor, const std::uint8_t* end,
                       double& v) {
  std::uint64_t bits = get_u64(cursor, end);
  __builtin_memcpy(&v, &bits, sizeof(v));
}

// ---- support encoding ----
inline void put_support(Payload& out, const Bitset64& s) {
  put_u64(out, s.word());
}
inline void put_support(Payload& out, const DynBitset& s) {
  put_u64(out, s.words().size());
  for (std::uint64_t w : s.words()) put_u64(out, w);
}
inline void get_support(const std::uint8_t*& cursor, const std::uint8_t* end,
                        Bitset64& s) {
  s = Bitset64(get_u64(cursor, end));
}
inline void get_support(const std::uint8_t*& cursor, const std::uint8_t* end,
                        DynBitset& s) {
  std::size_t count = get_u64(cursor, end);
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = get_u64(cursor, end);
  s = DynBitset::from_words(std::move(words));
}

}  // namespace detail

/// Encode a batch of columns into one message payload.
template <typename Scalar, typename Support>
Payload encode_columns(const std::vector<FluxColumn<Scalar, Support>>& columns) {
  Payload out;
  detail::put_u64(out, columns.size());
  for (const auto& column : columns) {
    detail::put_support(out, column.support);
    detail::put_u64(out, column.values.size());
    for (const auto& value : column.values) detail::put_scalar(out, value);
  }
  return out;
}

/// Inverse of encode_columns.
template <typename Scalar, typename Support>
std::vector<FluxColumn<Scalar, Support>> decode_columns(
    const Payload& payload) {
  const std::uint8_t* cursor = payload.data();
  const std::uint8_t* end = payload.data() + payload.size();
  std::vector<FluxColumn<Scalar, Support>> columns;
  const std::uint64_t count = detail::get_u64(cursor, end);
  columns.reserve(count);
  for (std::uint64_t c = 0; c < count; ++c) {
    FluxColumn<Scalar, Support> column;
    detail::get_support(cursor, end, column.support);
    const std::uint64_t size = detail::get_u64(cursor, end);
    column.values.resize(size);
    for (auto& value : column.values)
      detail::get_scalar(cursor, end, value);
    columns.push_back(std::move(column));
  }
  if (cursor != end)
    throw ParseError("mpsim: trailing bytes after column batch");
  return columns;
}

}  // namespace elmo::mpsim
