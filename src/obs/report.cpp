#include "obs/report.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/json.hpp"

namespace elmo::obs {

namespace {

JsonValue to_json(const std::map<std::string, std::uint64_t>& map) {
  JsonValue out = JsonValue::object();
  for (const auto& [key, value] : map) out.set(key, JsonValue(value));
  return out;
}

JsonValue to_json(const std::map<std::string, double>& map) {
  JsonValue out = JsonValue::object();
  for (const auto& [key, value] : map) out.set(key, JsonValue(value));
  return out;
}

JsonValue rank_to_json(const RankEntry& rank) {
  JsonValue out = JsonValue::object();
  out.set("rank", JsonValue(rank.rank));
  out.set("messages_sent", JsonValue(rank.messages_sent));
  out.set("messages_received", JsonValue(rank.messages_received));
  out.set("bytes_sent", JsonValue(rank.bytes_sent));
  out.set("collectives", JsonValue(rank.collectives));
  out.set("memory_peak_bytes", JsonValue(rank.memory_peak_bytes));
  out.set("spill_bytes", JsonValue(rank.spill_bytes));
  out.set("wait_data_us", JsonValue(rank.wait_data_us));
  out.set("wait_barrier_us", JsonValue(rank.wait_barrier_us));
  out.set("wait_straggler_us", JsonValue(rank.wait_straggler_us));
  out.set("max_queue_depth", JsonValue(rank.max_queue_depth));
  out.set("phase_seconds", to_json(rank.phase_seconds));
  return out;
}

JsonValue ranks_to_json(const std::vector<RankEntry>& ranks) {
  JsonValue out = JsonValue::array();
  for (const auto& rank : ranks) out.push_back(rank_to_json(rank));
  return out;
}

}  // namespace

JsonValue SolveReport::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("network", JsonValue(network));
  root.set("algorithm", JsonValue(algorithm));
  root.set("num_ranks", JsonValue(num_ranks));
  JsonValue config_json = JsonValue::object();
  for (const auto& [key, value] : config)
    config_json.set(key, JsonValue(value));
  root.set("config", std::move(config_json));

  root.set("num_efms", JsonValue(num_efms));
  root.set("seconds", JsonValue(seconds));
  root.set("totals", obs::to_json(totals));
  root.set("peak_columns", JsonValue(peak_columns));
  root.set("peak_matrix_bytes", JsonValue(peak_matrix_bytes));
  root.set("bigint_fallback", JsonValue(bigint_fallback));
  root.set("phase_seconds", obs::to_json(phase_seconds));
  root.set("peak_rss_bytes", JsonValue(peak_rss_bytes));
  root.set("rss_bytes", JsonValue(rss_bytes));

  JsonValue resource_json = JsonValue::object();
  resource_json.set("mem_limit_bytes", JsonValue(mem_limit_bytes));
  resource_json.set("mem_peak_bytes", JsonValue(mem_peak_bytes));
  resource_json.set("spill_bytes", JsonValue(spill_bytes));
  resource_json.set("spill_blocks", JsonValue(spill_blocks));
  root.set("resource", std::move(resource_json));

  root.set("flow", flow.to_json());

  root.set("ranks", ranks_to_json(ranks));

  JsonValue subsets_json = JsonValue::array();
  for (const auto& subset : subsets) {
    JsonValue entry = JsonValue::object();
    entry.set("label", JsonValue(subset.label));
    entry.set("num_efms", JsonValue(subset.num_efms));
    entry.set("seconds", JsonValue(subset.seconds));
    entry.set("attempts", JsonValue(subset.attempts));
    entry.set("extra_splits", JsonValue(subset.extra_splits));
    entry.set("resumed", JsonValue(subset.resumed));
    entry.set("totals", obs::to_json(subset.totals));
    entry.set("phase_seconds", obs::to_json(subset.phase_seconds));
    entry.set("ranks", ranks_to_json(subset.ranks));
    subsets_json.push_back(std::move(entry));
  }
  root.set("subsets", std::move(subsets_json));

  JsonValue iterations_json = JsonValue::array();
  for (const auto& it : iterations) {
    JsonValue entry = JsonValue::object();
    entry.set("row", JsonValue(it.row));
    entry.set("positives", JsonValue(it.positives));
    entry.set("negatives", JsonValue(it.negatives));
    entry.set("pairs_probed", JsonValue(it.pairs_probed));
    entry.set("pretest_survivors", JsonValue(it.pretest_survivors));
    entry.set("duplicates_removed", JsonValue(it.duplicates_removed));
    entry.set("rank_tests", JsonValue(it.rank_tests));
    entry.set("accepted", JsonValue(it.accepted));
    entry.set("columns_after", JsonValue(it.columns_after));
    iterations_json.push_back(std::move(entry));
  }
  root.set("iterations", std::move(iterations_json));

  JsonValue events_json = JsonValue::array();
  for (const auto& event : events) {
    JsonValue entry = JsonValue::object();
    entry.set("t_seconds", JsonValue(event.t_seconds));
    entry.set("kind", JsonValue(event.kind));
    entry.set("detail", JsonValue(event.detail));
    events_json.push_back(std::move(entry));
  }
  root.set("events", std::move(events_json));
  return root;
}

void SolveReport::write(const std::string& path) const {
  const std::string json = to_json().dump(2);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    throw std::runtime_error("cannot open report output file: " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool ok =
      written == json.size() && newline_ok && std::fclose(file) == 0;
  if (!ok) throw std::runtime_error("failed writing report file: " + path);
}

namespace {

/// Read one "Key:  <kB>" line from /proc/self/status; 0 when unavailable.
std::uint64_t proc_status_kib(const char* key) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len, "%llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(status);
  return kib;
}

}  // namespace

std::uint64_t process_peak_rss_bytes() {
  return proc_status_kib("VmHWM:") * 1024;
}

std::uint64_t process_current_rss_bytes() {
  return proc_status_kib("VmRSS:") * 1024;
}

}  // namespace elmo::obs
