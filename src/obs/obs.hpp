// obs — observability facade.
//
// The obs module is cross-cutting: any layer may use it, but (enforced by
// elmo_analyze's include-graph pass) only through this header.  Keeping a
// single entry point means the rest of the tree never wires itself to the
// internal file layout of the diagnostics stack, and lets the individual
// headers split or merge without a tree-wide include rewrite.
//
// Re-exports:
//   obs/trace.hpp       Chrome/Perfetto trace_event recording (incl. flows)
//   obs/metrics.hpp     counters/gauges/histograms registry
//   obs/progress.hpp    progress + ETA reporting
//   obs/report.hpp      end-of-run machine-readable report
//   obs/flow.hpp        message-flow / critical-path post-processing
//   obs/ledger.hpp      append-only run ledger + regression sentinel
//   obs/json.hpp        the minimal JSON value/writer the above share
//   obs/suppressed.hpp  suppressed-diagnostic accounting
#pragma once

#include "obs/flow.hpp"        // lint:allow(unused-include) facade re-export
#include "obs/json.hpp"        // lint:allow(unused-include) facade re-export
#include "obs/ledger.hpp"      // lint:allow(unused-include) facade re-export
#include "obs/metrics.hpp"     // lint:allow(unused-include) facade re-export
#include "obs/progress.hpp"    // lint:allow(unused-include) facade re-export
#include "obs/report.hpp"      // lint:allow(unused-include) facade re-export
#include "obs/suppressed.hpp"  // lint:allow(unused-include) facade re-export
#include "obs/trace.hpp"       // lint:allow(unused-include) facade re-export
