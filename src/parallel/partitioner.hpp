// Partitioning of the candidate pair space across workers.
//
// Algorithm 2's "combinatorial" parallelisation assigns each compute rank a
// slice of the positive x negative pair cross product of the current
// iteration.  Pairs are addressed by a flattened index; the partitioner
// yields contiguous, near-equal ranges (difference at most one pair).
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace elmo {

struct PairRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t count() const { return end - begin; }
  friend bool operator==(const PairRange&, const PairRange&) = default;
};

/// Range of flattened pair indices assigned to `worker` of `num_workers`.
/// The first (total % num_workers) workers receive one extra pair.
inline PairRange pair_slice(std::uint64_t total, int worker,
                            int num_workers) {
  ELMO_REQUIRE(num_workers > 0, "pair_slice: need at least one worker");
  ELMO_REQUIRE(worker >= 0 && worker < num_workers,
               "pair_slice: worker out of range");
  const std::uint64_t n = static_cast<std::uint64_t>(num_workers);
  const std::uint64_t w = static_cast<std::uint64_t>(worker);
  const std::uint64_t base = total / n;
  const std::uint64_t extra = total % n;
  const std::uint64_t begin = w * base + std::min(w, extra);
  const std::uint64_t size = base + (w < extra ? 1 : 0);
  return PairRange{begin, begin + size};
}

}  // namespace elmo
