file(REMOVE_RECURSE
  "CMakeFiles/test_cross_algorithm.dir/test_cross_algorithm.cpp.o"
  "CMakeFiles/test_cross_algorithm.dir/test_cross_algorithm.cpp.o.d"
  "test_cross_algorithm"
  "test_cross_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
