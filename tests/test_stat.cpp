// Tests for the run ledger and its regression sentinel: record extraction
// from report JSON, JSONL append/load roundtrips, the list/diff renderings
// elmo_stat prints, metric classification, and check_regression's
// noise-aware pass/fail semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/ledger.hpp"

namespace elmo {
namespace {

obs::JsonValue parse(const std::string& text) {
  std::string error;
  obs::JsonValue value = obs::parse_json(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  return value;
}

/// A miniature but structurally faithful report.json document.
obs::JsonValue sample_report(bool traced, double seconds,
                             std::uint64_t pairs) {
  return parse(
      "{\"network\":\"toy\",\"algorithm\":\"combined\",\"num_ranks\":3,"
      "\"config\":{\"partition\":\"r6r,r8r\",\"threads\":\"1\"},"
      "\"num_efms\":8,\"seconds\":" + std::to_string(seconds) + ","
      "\"totals\":{\"pairs_probed\":" + std::to_string(pairs) + ","
      "\"rank_tests\":5},"
      "\"flow\":{\"traced\":" + std::string(traced ? "true" : "false") + ","
      "\"critical_path_us\":793.2,\"critical_path_steps\":12,"
      "\"wall_us\":1611.9,\"flows_emitted\":12,\"flows_matched\":12,"
      "\"imbalance_pct\":30.7},"
      "\"resource\":{\"peak_rss_bytes\":4800000},"
      "\"ranks\":[{\"rank\":0,\"bytes_sent\":100}]}");
}

TEST(Ledger, RecordExtractionFlattensMetrics) {
  const obs::LedgerRecord record = obs::make_ledger_record(
      sample_report(true, 1.5, 42), "2026-08-08T00:00:00Z", "v1.2.3", "host");
  EXPECT_EQ(record.schema_version, obs::kLedgerSchemaVersion);
  EXPECT_EQ(record.network, "toy");
  EXPECT_EQ(record.algorithm, "combined");
  EXPECT_EQ(record.num_ranks, 3);
  EXPECT_EQ(record.num_efms, 8u);
  EXPECT_DOUBLE_EQ(record.seconds, 1.5);
  EXPECT_EQ(record.config.at("partition"), "r6r,r8r");
  // Numeric leaves flatten to dot paths; arrays (per-rank detail) do not.
  EXPECT_DOUBLE_EQ(record.metrics.at("totals.pairs_probed"), 42.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("resource.peak_rss_bytes"), 4800000.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("flow.flows_matched"), 12.0);
  EXPECT_EQ(record.metrics.count("ranks.bytes_sent"), 0u);
  // num_ranks is identity (part of the workload key), not a metric.
  EXPECT_EQ(record.metrics.count("num_ranks"), 0u);
}

TEST(Ledger, UntracedRecordOmitsTraceDerivedFlowMetrics) {
  const obs::LedgerRecord record = obs::make_ledger_record(
      sample_report(false, 1.0, 42), "t", "g", "h");
  // An untraced run reports those fields as zeros; recording them would
  // flag spurious regressions against any traced baseline.
  EXPECT_EQ(record.metrics.count("flow.critical_path_us"), 0u);
  EXPECT_EQ(record.metrics.count("flow.flows_emitted"), 0u);
  EXPECT_EQ(record.metrics.count("flow.wall_us"), 0u);
  // Counter-derived flow metrics stay.
  EXPECT_EQ(record.metrics.count("flow.imbalance_pct"), 1u);
}

TEST(Ledger, WorkloadKeyIgnoresOutcome) {
  const obs::LedgerRecord a = obs::make_ledger_record(
      sample_report(true, 1.0, 42), "t1", "g1", "h1");
  const obs::LedgerRecord b = obs::make_ledger_record(
      sample_report(false, 9.0, 77), "t2", "g2", "h2");
  EXPECT_EQ(a.key(), b.key());
}

TEST(Ledger, AppendLoadRoundtrip) {
  const std::string path = ::testing::TempDir() + "ledger_roundtrip.jsonl";
  std::remove(path.c_str());
  const obs::LedgerRecord record = obs::make_ledger_record(
      sample_report(true, 1.5, 42), "2026-08-08T00:00:00Z", "v1.2.3", "host");
  obs::append_ledger_record(path, record);
  obs::append_ledger_record(path, record);

  const auto records = obs::load_ledger(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].timestamp, "2026-08-08T00:00:00Z");
  EXPECT_EQ(records[0].git_describe, "v1.2.3");
  EXPECT_EQ(records[0].hostname, "host");
  EXPECT_EQ(records[0].key(), record.key());
  EXPECT_EQ(records[0].metrics, record.metrics);
  std::remove(path.c_str());
}

TEST(Ledger, LoadRejectsDamagedRecord) {
  const std::string path = ::testing::TempDir() + "ledger_damaged.jsonl";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("{\"schema_version\":1}\nnot json at all\n", file);
  std::fclose(file);
  EXPECT_THROW(obs::load_ledger(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Ledger, ListAndDiffRenderings) {
  const obs::LedgerRecord a = obs::make_ledger_record(
      sample_report(true, 1.5, 42), "2026-08-08T00:00:00Z", "v1", "hostA");
  obs::LedgerRecord b = a;
  b.timestamp = "2026-08-08T01:00:00Z";
  b.metrics["totals.pairs_probed"] = 84.0;
  b.metrics["only_in_b"] = 1.0;

  const std::string list = obs::render_ledger_list({a, b});
  EXPECT_NE(list.find("[0] 2026-08-08T00:00:00Z toy/combined ranks=3"),
            std::string::npos);
  EXPECT_NE(list.find("efms=8"), std::string::npos);

  const std::string diff = obs::render_ledger_diff(a, b);
  EXPECT_NE(diff.find("totals.pairs_probed: 42 -> 84 (+100.00%)"),
            std::string::npos);
  EXPECT_NE(diff.find("only_in_b: only in candidate"), std::string::npos);
  // Identical metrics collapse into the unchanged tally, not noise lines.
  EXPECT_EQ(diff.find("flow.flows_matched:"), std::string::npos);
}

TEST(Ledger, ClassifyMetric) {
  using obs::MetricClass;
  EXPECT_EQ(obs::classify_metric("seconds"), MetricClass::kTime);
  EXPECT_EQ(obs::classify_metric("flow.critical_path_us"),
            MetricClass::kTime);
  EXPECT_EQ(obs::classify_metric("flow.imbalance_pct"), MetricClass::kTime);
  EXPECT_EQ(obs::classify_metric("resource.peak_rss_bytes"),
            MetricClass::kMemory);
  EXPECT_EQ(obs::classify_metric("totals.pairs_probed"),
            MetricClass::kCount);
  EXPECT_EQ(obs::classify_metric("num_efms"), MetricClass::kCount);
}

TEST(LedgerCheck, SelfComparisonPasses) {
  const obs::LedgerRecord record = obs::make_ledger_record(
      sample_report(true, 1.5, 42), "t", "g", "h");
  const obs::CheckResult result =
      obs::check_regression(record, record, obs::CheckThresholds{});
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.regressions.empty());
}

TEST(LedgerCheck, CountDriftFailsBothDirections) {
  const obs::LedgerRecord baseline = obs::make_ledger_record(
      sample_report(true, 1.5, 42), "t", "g", "h");
  for (std::uint64_t pairs : {41u, 43u}) {
    const obs::LedgerRecord candidate = obs::make_ledger_record(
        sample_report(true, 1.5, pairs), "t", "g", "h");
    const obs::CheckResult result =
        obs::check_regression(baseline, candidate, obs::CheckThresholds{});
    EXPECT_FALSE(result.ok) << "pairs=" << pairs;
    EXPECT_NE(result.report.find("[REGRESSION] totals.pairs_probed"),
              std::string::npos);
  }
}

TEST(LedgerCheck, TimeNoiseFloorAbsorbsSmallIncreases) {
  const obs::LedgerRecord baseline = obs::make_ledger_record(
      sample_report(true, 0.010, 42), "t", "g", "h");
  // 10 ms -> 40 ms is +300% but under the 50 ms absolute floor: not a
  // regression.  10 s -> 14 s is +40% over the 25% relative tolerance and
  // far beyond the floor: regression.
  const obs::LedgerRecord small_jump = obs::make_ledger_record(
      sample_report(true, 0.040, 42), "t", "g", "h");
  EXPECT_TRUE(obs::check_regression(baseline, small_jump,
                                    obs::CheckThresholds{})
                  .ok);

  const obs::LedgerRecord slow_base = obs::make_ledger_record(
      sample_report(true, 10.0, 42), "t", "g", "h");
  const obs::LedgerRecord slow_cand = obs::make_ledger_record(
      sample_report(true, 14.0, 42), "t", "g", "h");
  const obs::CheckResult result = obs::check_regression(
      slow_base, slow_cand, obs::CheckThresholds{});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.report.find("[REGRESSION] seconds"), std::string::npos);
}

TEST(LedgerCheck, TimeImprovementsNeverFail) {
  const obs::LedgerRecord baseline = obs::make_ledger_record(
      sample_report(true, 10.0, 42), "t", "g", "h");
  const obs::LedgerRecord faster = obs::make_ledger_record(
      sample_report(true, 2.0, 42), "t", "g", "h");
  EXPECT_TRUE(
      obs::check_regression(baseline, faster, obs::CheckThresholds{}).ok);
}

TEST(LedgerCheck, PerMetricOverrideWins) {
  const obs::LedgerRecord baseline = obs::make_ledger_record(
      sample_report(true, 10.0, 42), "t", "g", "h");
  const obs::LedgerRecord candidate = obs::make_ledger_record(
      sample_report(true, 14.0, 42), "t", "g", "h");
  obs::CheckThresholds thresholds;
  thresholds.per_metric["seconds"] = 100.0;  // allow up to +100%
  EXPECT_TRUE(obs::check_regression(baseline, candidate, thresholds).ok);
}

TEST(LedgerCheck, MetricsOnlyInOneSideAreSkipped) {
  // Traced candidate vs untraced baseline: the trace-derived metrics exist
  // only on the candidate and must not fail the check.
  const obs::LedgerRecord baseline = obs::make_ledger_record(
      sample_report(false, 1.5, 42), "t", "g", "h");
  const obs::LedgerRecord candidate = obs::make_ledger_record(
      sample_report(true, 1.5, 42), "t", "g", "h");
  EXPECT_TRUE(
      obs::check_regression(baseline, candidate, obs::CheckThresholds{}).ok);
}

TEST(Ledger, EnvOverridesMakeRecordsDeterministic) {
  setenv("ELMO_LEDGER_TIMESTAMP", "2026-01-02T03:04:05Z", 1);
  setenv("ELMO_GIT_DESCRIBE", "v9.9-test", 1);
  const obs::LedgerRecord record =
      obs::make_ledger_record_env(sample_report(true, 1.0, 42));
  unsetenv("ELMO_LEDGER_TIMESTAMP");
  unsetenv("ELMO_GIT_DESCRIBE");
  EXPECT_EQ(record.timestamp, "2026-01-02T03:04:05Z");
  EXPECT_EQ(record.git_describe, "v9.9-test");
  EXPECT_FALSE(record.hostname.empty());
}

TEST(Ledger, RecordJsonRoundtrip) {
  const obs::LedgerRecord record = obs::make_ledger_record(
      sample_report(true, 1.5, 42), "2026-08-08T00:00:00Z", "v1.2.3", "host");
  const obs::LedgerRecord back =
      obs::parse_ledger_record(parse(record.to_json().dump(-1)));
  EXPECT_EQ(back.schema_version, record.schema_version);
  EXPECT_EQ(back.key(), record.key());
  EXPECT_EQ(back.num_efms, record.num_efms);
  EXPECT_EQ(back.metrics, record.metrics);
}

}  // namespace
}  // namespace elmo
