// One iteration of the Nullspace Algorithm (one processed row).
//
// The steps mirror Algorithm 1/2 of the paper and are split into free
// functions so the serial solver (Algorithm 1) and the combinatorial
// parallel solver (Algorithm 2) share the same kernel:
//
//   classify_row        - split columns into zero / positive / negative
//   generate_candidates - pair positives with negatives over a flattened
//                         pair-index range (the range is what Algorithm 2
//                         partitions across compute ranks)
//   sort_and_dedup      - the paper's Sort&RemoveDuplicates (by support)
//   merge_next          - RemoveNegColumns + concatenate survivors
//
// The cardinality pre-test inside generate_candidates is the hot loop: an
// OR + popcount per pair; pairs failing it are counted but never
// materialised.  This is what the paper's per-iteration "generated
// candidate modes" numbers count.  Production traversal runs through the
// tiled/pruned/SIMD engine in nullspace/pairgen.hpp; the straight scalar
// loop is kept here as generate_candidate_refs_reference, the differential
// oracle the engine is tested against.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/pairgen.hpp"
#include "nullspace/rank_test.hpp"
#include "nullspace/stats.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace elmo {

struct RowClassification {
  std::vector<std::uint32_t> zero;
  std::vector<std::uint32_t> positive;
  std::vector<std::uint32_t> negative;

  /// Total positive x negative pairs for this row.
  [[nodiscard]] std::uint64_t pair_count() const {
    return static_cast<std::uint64_t>(positive.size()) *
           static_cast<std::uint64_t>(negative.size());
  }
};

template <typename Scalar, typename Support>
RowClassification classify_row(
    const std::vector<FluxColumn<Scalar, Support>>& columns,
    std::size_t row) {
  RowClassification out;
  for (std::uint32_t j = 0; j < columns.size(); ++j) {
    if (!columns[j].support.test(row)) {
      out.zero.push_back(j);
      continue;
    }
    if (columns[j].sign_at(row) > 0)
      out.positive.push_back(j);
    else
      out.negative.push_back(j);
  }
  return out;
}

/// Contiguous word-array snapshot of a set of supports.  The candidate
/// pre-test touches two supports per pair, billions of times per yeast
/// iteration; flattening them removes the per-column pointer chase (and,
/// for DynBitset, any allocation) from the inner loop.
template <typename Support>
class FlatSupports {
 public:
  void assign(const auto& columns, const std::vector<std::uint32_t>& chosen) {
    if constexpr (std::is_same_v<Support, Bitset64>) {
      stride_ = 1;
      words_.resize(chosen.size());
      for (std::size_t k = 0; k < chosen.size(); ++k)
        words_[k] = columns[chosen[k]].support.word();
    } else {
      stride_ = chosen.empty() ? 1 : columns[chosen[0]].support.words().size();
      words_.resize(chosen.size() * stride_);
      for (std::size_t k = 0; k < chosen.size(); ++k) {
        const auto& w = columns[chosen[k]].support.words();
        std::copy(w.begin(), w.end(), words_.begin() + k * stride_);
      }
    }
  }

  /// popcount(support[a] | support[b]) <= max_union?
  [[nodiscard]] bool union_within(std::size_t a, const std::uint64_t* b,
                                  std::size_t max_union) const {
    const std::uint64_t* pa = words_.data() + a * stride_;
    std::size_t count = 0;
    for (std::size_t w = 0; w < stride_; ++w)
      count += static_cast<std::size_t>(std::popcount(pa[w] | b[w]));
    return count <= max_union;
  }

  [[nodiscard]] const std::uint64_t* row(std::size_t k) const {
    return words_.data() + k * stride_;
  }
  [[nodiscard]] std::size_t stride() const { return stride_; }

 private:
  std::size_t stride_ = 1;
  std::vector<std::uint64_t> words_;
};

/// REFERENCE generator: the straight scalar loop over row-major pair
/// indices, kept as the differential oracle for the engine in pairgen.hpp
/// (tests assert both paths produce the same candidate multiset and the
/// same survivor counts).  Production code calls generate_candidate_refs /
/// process_pair_range, which run the tiled/pruned/SIMD engine.
///
/// Generates candidate refs for flattened pair indices starting at
/// `*cursor` until either the pair range [begin, end) is exhausted or
/// `out` reaches `ref_cap` entries (bounded-memory blocking).  Updates
/// `*cursor`.
///
/// Pair p maps to (positive[p / negatives], negative[p % negatives]).
/// The cheap pre-test bounds the support union: |supp(u) ∪ supp(v)| <=
/// rank + 2 (the combination zeroes the processed row).  For survivors the
/// EXACT support is computed — entries shared by both columns may cancel —
/// and candidates whose support is empty (mirror columns) or still larger
/// than rank + 1 are dropped immediately.
template <typename Scalar, typename Support>
void generate_candidate_refs_reference(
    const std::vector<FluxColumn<Scalar, Support>>& columns, std::size_t row,
    const RowClassification& cls, std::uint64_t* cursor, std::uint64_t end,
    std::size_t rank, std::size_t ref_cap,
    std::vector<CandidateRef<Support>>& out, IterationStats& stats) {
  const std::uint64_t negatives = cls.negative.size();
  if (negatives == 0 || cls.positive.empty() || *cursor >= end) {
    *cursor = end;
    return;
  }
  const std::size_t max_union = rank + 2;

  FlatSupports<Support> pos;
  FlatSupports<Support> neg;
  pos.assign(columns, cls.positive);
  neg.assign(columns, cls.negative);

  // Survivor supports are computed word-wise on the stack (the generic
  // bitset operators would heap-allocate three temporaries per survivor —
  // the full yeast run produces hundreds of millions of survivors).
  constexpr std::size_t kMaxStackWords = 64;  // up to 4096 reactions
  const std::size_t stride = pos.stride();
  ELMO_REQUIRE(stride <= kMaxStackWords,
               "network too wide for the stack support buffer");
  std::uint64_t union_words[kMaxStackWords];

  std::uint64_t p = *cursor;
  std::size_t i = static_cast<std::size_t>(p / negatives);
  std::size_t j = static_cast<std::size_t>(p % negatives);
  while (p < end && out.size() < ref_cap) {
    // Run through one positive column's stretch with its support pinned.
    const std::uint64_t stretch =
        std::min<std::uint64_t>(end - p, negatives - j);
    const std::uint64_t* pi = pos.row(i);
    const auto& u = columns[cls.positive[i]];
    std::uint64_t s = 0;
    for (; s < stretch; ++s, ++j) {
      ++stats.pairs_probed;
      if (!neg.union_within(j, pi, max_union)) continue;
      ++stats.pretest_survivors;
      const auto& v = columns[cls.negative[j]];
      const std::uint64_t* nj = neg.row(j);

      // Exact support: union minus the processed row minus cancellations
      // (entries both columns carry can cancel in the combination).
      const Scalar a = -v.values[row];
      const Scalar b = u.values[row];
      std::size_t size = 0;
      for (std::size_t w = 0; w < stride; ++w) {
        std::uint64_t uw = pi[w] | nj[w];
        std::uint64_t both = pi[w] & nj[w];
        if (row / 64 == w) {
          const std::uint64_t row_bit = 1ULL << (row % 64);
          uw &= ~row_bit;
          both &= ~row_bit;
        }
        while (both) {
          const std::size_t idx =
              w * 64 + static_cast<std::size_t>(std::countr_zero(both));
          both &= both - 1;
          if (scalar_is_zero(a * u.values[idx] + b * v.values[idx]))
            uw &= ~(1ULL << (idx % 64));
        }
        union_words[w] = uw;
        size += static_cast<std::size_t>(std::popcount(uw));
      }
      if (size == 0 || size > rank + 1) continue;  // zero vector / nullity>=2

      Support support = make_support<Support>(columns[0].values.size());
      if constexpr (std::is_same_v<Support, Bitset64>) {
        support = Bitset64(union_words[0]);
      } else {
        support = DynBitset::from_words(
            std::vector<std::uint64_t>(union_words, union_words + stride));
      }
      out.push_back(CandidateRef<Support>{std::move(support),
                                          cls.positive[i], cls.negative[j]});
      if (out.size() >= ref_cap) {
        ++s;
        ++j;
        break;
      }
    }
    p += s;
    if (j == negatives) {
      j = 0;
      ++i;
    }
  }
  *cursor = p;
}

/// Generate candidate refs through the tiled/pruned/SIMD engine
/// (nullspace/pairgen.hpp) for ENGINE indices starting at `*cursor` until
/// either [begin, end) is exhausted or `out` reaches `ref_cap` entries.
///
/// Engine indices enumerate the same pos x neg pair space as the reference
/// generator but in tile-major order over popcount-sorted sides; any
/// partition of [0, pair_count) still covers every pair exactly once, so
/// rank slicing and pair-count conservation are unaffected.  The candidate
/// multiset for a full range is identical to the reference (the engine
/// only reorders the probes and skips provably-dead ones).
///
/// This convenience wrapper builds the lookup tables per call; block loops
/// should build PairGenTables once and drive a PairGen directly (see
/// process_pair_range).
template <typename Scalar, typename Support>
void generate_candidate_refs(
    const std::vector<FluxColumn<Scalar, Support>>& columns, std::size_t row,
    const RowClassification& cls, std::uint64_t* cursor, std::uint64_t end,
    std::size_t rank, std::size_t ref_cap,
    std::vector<CandidateRef<Support>>& out, IterationStats& stats,
    PairGenConfig config = {}) {
  if (cls.negative.empty() || cls.positive.empty() || *cursor >= end) {
    *cursor = end;
    return;
  }
  PairGenTables<Scalar, Support> tables(columns, row, cls.positive,
                                        cls.negative, cls.zero, rank, config);
  PairGen<Scalar, Support> gen(tables, *cursor, end);
  out.reserve(out.size() + static_cast<std::size_t>(std::min<std::uint64_t>(
                               {ref_cap, end - *cursor, std::uint64_t{1} << 20})));
  gen.generate(ref_cap, out, stats);
  *cursor = gen.cursor();
}

/// Materialise an accepted ref into a full column.
template <typename Scalar, typename Support>
FluxColumn<Scalar, Support> materialize(
    const std::vector<FluxColumn<Scalar, Support>>& columns, std::size_t row,
    const CandidateRef<Support>& ref) {
  return combine_columns(columns[ref.positive], columns[ref.negative], row);
}

/// The paper's Sort&RemoveDuplicates: sort by support pattern (then values,
/// for determinism) and keep one column per support.  Candidates sharing a
/// support are either proportional (true duplicates) or will all fail the
/// rank test, so support-level dedup is lossless.
template <typename Scalar, typename Support>
void sort_and_dedup(std::vector<FluxColumn<Scalar, Support>>& candidates,
                    IterationStats& stats) {
  std::sort(candidates.begin(), candidates.end());
  auto last = std::unique(candidates.begin(), candidates.end(),
                          [](const auto& a, const auto& b) {
                            return a.support == b.support;
                          });
  stats.duplicates_removed +=
      static_cast<std::uint64_t>(candidates.end() - last);
  candidates.erase(last, candidates.end());
}

/// Drop candidates that exactly duplicate an existing zero column (the
/// paper's Fig. 2 fourth iteration: of four candidates, one reproduces an
/// already-present column and only three reach the rank test).  Only
/// value-exact duplicates are dropped: an equal-support candidate with
/// different values either fails the rank test anyway (nullity >= 2) or is
/// the mirror orientation of a reversible-support mode, which must be kept
/// while irreversible rows remain unprocessed.
template <typename Scalar, typename Support>
void dedup_against_existing(
    const std::vector<FluxColumn<Scalar, Support>>& columns,
    const std::vector<std::uint32_t>& zero_columns,
    std::vector<FluxColumn<Scalar, Support>>& candidates,
    IterationStats& stats) {
  if (candidates.empty() || zero_columns.empty()) return;
  std::vector<const FluxColumn<Scalar, Support>*> sorted;
  sorted.reserve(zero_columns.size());
  for (std::uint32_t j : zero_columns) sorted.push_back(&columns[j]);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return *a < *b; });
  std::size_t kept = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), candidates[c],
        [](const auto* a, const auto& b) { return *a < b; });
    if (it != sorted.end() && **it == candidates[c]) {
      ++stats.duplicates_removed;
      continue;
    }
    if (kept != c) candidates[kept] = std::move(candidates[c]);
    ++kept;
  }
  candidates.resize(kept);
}

/// Apply the algebraic rank test to each candidate, keeping survivors.
/// `tester` is any object with is_elementary(support) — the exact Bareiss
/// RankTester or the fast ModularRankTester.
template <typename Tester, typename Scalar, typename Support>
void rank_filter(Tester& tester,
                 std::vector<FluxColumn<Scalar, Support>>& candidates,
                 IterationStats& stats) {
  std::size_t kept = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    ++stats.rank_tests;
    if (tester.is_elementary(candidates[c].support)) {
      if (kept != c) candidates[kept] = std::move(candidates[c]);
      ++kept;
    }
  }
  stats.accepted += kept;
  candidates.resize(kept);
}

/// Apply the combinatorial subset test instead of the rank test.  A
/// candidate survives iff no SURVIVING column's support (columns that will
/// be part of the next matrix — zero, positive, and negative-if-reversible)
/// and no OTHER candidate's support is strictly contained in its own.
/// Candidates must already be deduped (distinct supports).
template <typename Scalar, typename Support>
void combinatorial_filter(
    const std::vector<FluxColumn<Scalar, Support>>& columns,
    const RowClassification& cls, bool row_reversible,
    std::vector<FluxColumn<Scalar, Support>>& candidates,
    IterationStats& stats) {
  std::vector<const Support*> survivors;
  survivors.reserve(columns.size());
  for (std::uint32_t j : cls.zero) survivors.push_back(&columns[j].support);
  for (std::uint32_t j : cls.positive)
    survivors.push_back(&columns[j].support);
  if (row_reversible) {
    for (std::uint32_t j : cls.negative)
      survivors.push_back(&columns[j].support);
  }
  std::size_t kept = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    ++stats.rank_tests;
    bool elementary = true;
    for (const Support* support : survivors) {
      if (*support != candidates[c].support &&
          support->is_subset_of(candidates[c].support)) {
        elementary = false;
        break;
      }
    }
    if (elementary) {
      // Candidates are sorted by support; supports are distinct.
      for (std::size_t d = 0; d < candidates.size() && elementary; ++d) {
        if (d != c &&
            candidates[d].support.is_subset_of(candidates[c].support))
          elementary = false;
      }
    }
    if (elementary) {
      if (kept != c) candidates[kept] = std::move(candidates[c]);
      ++kept;
    }
  }
  stats.accepted += kept;
  candidates.resize(kept);
}

/// Empty existing-column index: substituted when a block produced no refs
/// so tables.existing() is never forced just to loop over zero candidates.
template <typename Scalar, typename Support>
inline const std::vector<const FluxColumn<Scalar, Support>*> kNoExisting{};

/// Process one rank's pair range [begin, end) for `row` in bounded-memory
/// blocks: generate refs through the pairgen engine, dedup (within block,
/// across blocks, and against existing zero columns), apply
/// `is_elementary(support)`, and materialise accepted candidates into
/// `accepted_out` (appended; earlier content is left untouched).
///
/// [begin, end) are ENGINE indices (tile-major over popcount-sorted sides;
/// see pairgen.hpp).  Any partition of [0, cls.pair_count()) covers every
/// pair exactly once, so rank slicing and the pair-conservation audit are
/// unaffected by the reordering.
///
/// `shared_tables`, when given, must have been built from the same
/// (columns, row, cls, rank); dynamic schedulers build the tables once per
/// iteration and fan worker ranges out against them.  When null the tables
/// are built locally.
///
/// Blocking bounds transient memory by ~ref_cap refs regardless of how many
/// pretest survivors the pair range produces (the full Network I run
/// generates billions).
template <typename Scalar, typename Support, typename TestFn>
void process_pair_range(
    const std::vector<FluxColumn<Scalar, Support>>& columns, std::size_t row,
    const RowClassification& cls, std::size_t rank, std::uint64_t begin,
    std::uint64_t end, std::size_t ref_cap, const TestFn& is_elementary,
    IterationStats& stats, PhaseTimer& phases,
    std::vector<FluxColumn<Scalar, Support>>& accepted_out,
    const PairGenTables<Scalar, Support>* shared_tables = nullptr) {
  if (cls.positive.empty() || cls.negative.empty() || begin >= end) {
    stats.pairs_probed += (begin < end) ? end - begin : 0;
    return;
  }

  std::optional<PairGenTables<Scalar, Support>> local_tables;
  if (shared_tables == nullptr) {
    ScopedPhase phase(phases, Phase::kGenCand);
    local_tables.emplace(columns, row, cls.positive, cls.negative, cls.zero,
                         rank);
  }
  const PairGenTables<Scalar, Support>& tables =
      shared_tables != nullptr ? *shared_tables : *local_tables;

  const std::size_t initial_accepted = accepted_out.size();
  std::vector<Support> accepted_supports;  // sorted, for cross-block dedup
  std::vector<CandidateRef<Support>> refs;
  refs.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      {ref_cap, end - begin, std::uint64_t{1} << 20})));
  ValueSlab<Scalar> value_slab;  // recycles duplicate-probe value buffers
  PairGen<Scalar, Support> gen(tables, begin, end);
  while (!gen.done()) {
    gen.recycle(refs);  // return last block's support buffers to the slab
    refs.clear();
    {
      ScopedPhase phase(phases, Phase::kGenCand);
      gen.generate(ref_cap, refs, stats);
    }
    std::size_t block_first_accept = accepted_out.size();
    {
      ScopedPhase phase(phases, Phase::kMerge);
      // Stable sort by support ONLY: among equal supports the FIRST ref in
      // engine order survives.  Cross-block dedup keeps the earliest
      // block's ref, so first-in-engine-order is the one winner rule that
      // makes the result independent of ref_cap blocking.
      std::stable_sort(refs.begin(), refs.end(),
                       [](const auto& a, const auto& b) {
                         return a.support < b.support;
                       });
      auto last = std::unique(refs.begin(), refs.end(),
                              [](const auto& a, const auto& b) {
                                return a.support == b.support;
                              });
      stats.duplicates_removed +=
          static_cast<std::uint64_t>(refs.end() - last);
      refs.erase(last, refs.end());

      // Cross-block duplicates.
      if (!accepted_supports.empty()) {
        std::size_t kept = 0;
        for (std::size_t c = 0; c < refs.size(); ++c) {
          if (std::binary_search(accepted_supports.begin(),
                                 accepted_supports.end(), refs[c].support)) {
            ++stats.duplicates_removed;
            continue;
          }
          if (kept != c) refs[kept] = std::move(refs[c]);
          ++kept;
        }
        refs.resize(kept);
      }
      // Duplicates of existing zero columns (value-exact only).  The
      // sorted-by-support index is built inside the tables on first use —
      // guarding on refs keeps pure probe passes from ever paying for the
      // sort.  A candidate whose support AND values duplicate an existing
      // column is dropped (the paper's Fig. 2 fourth iteration), mirrors
      // are kept.
      if (const auto& existing =
              refs.empty() ? kNoExisting<Scalar, Support> : tables.existing();
          !existing.empty()) {
        std::size_t kept = 0;
        for (std::size_t c = 0; c < refs.size(); ++c) {
          auto range = std::equal_range(
              existing.begin(), existing.end(), refs[c].support,
              [](const auto& a, const auto& b) {
                if constexpr (std::is_pointer_v<std::decay_t<decltype(a)>>) {
                  return a->support < b;
                } else {
                  return a < b->support;
                }
              });
          bool duplicate = false;
          if (range.first != range.second) {
            // Support collision: compare primitive values without
            // materialising a column (the buffer is recycled).
            auto probe = value_slab.acquire();
            combine_values_into(columns[refs[c].positive],
                                columns[refs[c].negative], row, probe);
            for (auto it = range.first; it != range.second && !duplicate;
                 ++it) {
              duplicate = (*it)->values == probe;
            }
            value_slab.release(std::move(probe));
          }
          if (duplicate) {
            ++stats.duplicates_removed;
            continue;
          }
          if (kept != c) refs[kept] = std::move(refs[c]);
          ++kept;
        }
        refs.resize(kept);
      }
    }
    {
      ScopedPhase phase(phases, Phase::kRankTest);
      for (auto& ref : refs) {
        ++stats.rank_tests;
        if (!is_elementary(ref.support)) continue;
        // Materialise in place: combine_values_into yields the primitive
        // value vector and the ref already carries the exact support, so
        // neither is recomputed by FluxColumn::from_values.
        FluxColumn<Scalar, Support> column;
        auto values = value_slab.acquire();
        combine_values_into(columns[ref.positive], columns[ref.negative], row,
                            values);
        column.values = std::move(values);
        column.support = std::move(ref.support);
        accepted_out.push_back(std::move(column));
      }
    }
    if (!gen.done()) {
      // More blocks follow: remember this block's accepted supports.  The
      // block's refs were support-sorted, so its accepted slice already is;
      // one in-place merge keeps the running index sorted in linear time.
      ScopedPhase phase(phases, Phase::kMerge);
      const auto mid = static_cast<std::ptrdiff_t>(accepted_supports.size());
      accepted_supports.reserve(accepted_out.size() - initial_accepted);
      for (std::size_t a = block_first_accept; a < accepted_out.size(); ++a)
        accepted_supports.push_back(accepted_out[a].support);
      std::inplace_merge(accepted_supports.begin(),
                         accepted_supports.begin() + mid,
                         accepted_supports.end());
    }
  }
  stats.accepted +=
      static_cast<std::uint64_t>(accepted_out.size() - initial_accepted);
}

/// Remove accepted candidates whose support strictly contains another
/// accepted candidate's support — the cross-candidate half of the
/// combinatorial elementarity test, applied once per iteration after all
/// blocks (the per-column half runs inside the per-candidate TestFn).
template <typename Scalar, typename Support>
void cross_candidate_subset_filter(
    std::vector<FluxColumn<Scalar, Support>>& accepted,
    IterationStats& stats) {
  const std::size_t n = accepted.size();
  if (n < 2) return;

  // A strict subset has strictly smaller popcount, so candidate c only
  // needs testing against the popcount band BELOW its own: walk candidates
  // in popcount order and stop each scan at the first equal-or-larger
  // popcount (candidates with equal supports were already deduped, and
  // equal popcounts cannot strictly contain each other).  Worst case is
  // still quadratic but the common band structure makes it near-linear,
  // versus the unconditional O(n^2) subset scan this replaces.
  std::vector<std::uint32_t> pop(n);
  std::vector<std::uint32_t> order(n);
  for (std::size_t c = 0; c < n; ++c) {
    pop[c] = static_cast<std::uint32_t>(accepted[c].support.count());
    order[c] = static_cast<std::uint32_t>(c);
  }
  std::sort(order.begin(), order.end(),
            [&pop](std::uint32_t a, std::uint32_t b) {
              if (pop[a] != pop[b]) return pop[a] < pop[b];
              return a < b;
            });

  std::vector<char> dead(n, 0);
  for (std::size_t oc = 0; oc < n; ++oc) {
    const std::uint32_t c = order[oc];
    for (std::size_t od = 0; od < oc; ++od) {
      const std::uint32_t d = order[od];
      if (pop[d] >= pop[c]) break;  // band cut-off
      // Subset status is judged against the FULL accepted set (a removed
      // candidate still disqualifies its supersets), matching the
      // reference all-pairs scan.
      if (accepted[d].support.is_subset_of(accepted[c].support)) {
        dead[c] = 1;
        break;
      }
    }
  }

  std::size_t kept = 0;
  for (std::size_t c = 0; c < n; ++c) {
    if (dead[c]) {
      --stats.accepted;
      continue;
    }
    if (kept != c) accepted[kept] = std::move(accepted[c]);
    ++kept;
  }
  accepted.resize(kept);
}

/// Build the next iteration's matrix: zero columns + positive columns +
/// (negative columns if the processed reaction is reversible) + accepted
/// candidates (paper: RemoveNegColumns then concatenation).
template <typename Scalar, typename Support>
std::vector<FluxColumn<Scalar, Support>> merge_next(
    std::vector<FluxColumn<Scalar, Support>>&& columns,
    const RowClassification& cls, bool row_reversible,
    std::vector<FluxColumn<Scalar, Support>>&& accepted) {
  std::vector<FluxColumn<Scalar, Support>> next;
  next.reserve(cls.zero.size() + cls.positive.size() +
               (row_reversible ? cls.negative.size() : 0) + accepted.size());
  for (std::uint32_t j : cls.zero) next.push_back(std::move(columns[j]));
  for (std::uint32_t j : cls.positive) next.push_back(std::move(columns[j]));
  if (row_reversible) {
    for (std::uint32_t j : cls.negative)
      next.push_back(std::move(columns[j]));
  }
  for (auto& candidate : accepted) next.push_back(std::move(candidate));
  return next;
}

}  // namespace elmo
