// Tests for the support module: assertions, timers, env helpers, RNG.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace elmo {
namespace {

TEST(Assert, RequireThrowsWithContext) {
  try {
    ELMO_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
  EXPECT_NO_THROW(ELMO_REQUIRE(true, ""));
}

TEST(Assert, CheckThrowsInternalError) {
  EXPECT_THROW(ELMO_CHECK(false, "broken invariant"), InternalError);
}

TEST(Error, HierarchyCatchableAsBase) {
  try {
    throw OverflowError("x");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "x");
  }
  MemoryBudgetError mem("m", 100, 50);
  EXPECT_EQ(mem.requested_bytes, 100u);
  EXPECT_EQ(mem.budget_bytes, 50u);
}

TEST(Timer, StopwatchAdvances) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(watch.seconds(), 0.0);
  double before = watch.seconds();
  watch.reset();
  EXPECT_LE(watch.seconds(), before + 1.0);
}

TEST(Timer, PhaseTimerAccumulatesAndMerges) {
  PhaseTimer timer;
  timer.add("gen cand", 1.5);
  timer.add("gen cand", 0.5);
  timer.add("merge", 0.25);
  EXPECT_DOUBLE_EQ(timer.seconds("gen cand"), 2.0);
  EXPECT_DOUBLE_EQ(timer.seconds("missing"), 0.0);

  PhaseTimer other;
  other.add("gen cand", 1.0);
  other.add("rank test", 3.0);
  PhaseTimer sum = timer;
  sum.merge(other);
  EXPECT_DOUBLE_EQ(sum.seconds("gen cand"), 3.0);
  EXPECT_DOUBLE_EQ(sum.seconds("rank test"), 3.0);

  PhaseTimer peak = timer;
  peak.merge_max(other);
  EXPECT_DOUBLE_EQ(peak.seconds("gen cand"), 2.0);  // max(2.0, 1.0)
  EXPECT_DOUBLE_EQ(peak.seconds("rank test"), 3.0);
}

TEST(Timer, PhaseEnumAndStringApisAreEquivalent) {
  // The interned enum names ARE the historical string keys.
  EXPECT_EQ(phase_from_name("gen cand"), Phase::kGenCand);
  EXPECT_EQ(phase_from_name("rank test"), Phase::kRankTest);
  EXPECT_EQ(phase_from_name("communicate"), Phase::kCommunicate);
  EXPECT_EQ(phase_from_name("merge"), Phase::kMerge);
  EXPECT_EQ(phase_from_name("checkpoint"), Phase::kCheckpoint);
  EXPECT_EQ(phase_from_name("gen cand "), std::nullopt);
  EXPECT_EQ(phase_from_name(""), std::nullopt);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const Phase phase = static_cast<Phase>(p);
    EXPECT_EQ(phase_from_name(phase_name(phase)), phase);
  }

  // Adds through either API land in the same slot.
  PhaseTimer timer;
  timer.add(Phase::kGenCand, 1.0);
  timer.add("gen cand", 2.0);
  EXPECT_DOUBLE_EQ(timer.seconds(Phase::kGenCand), 3.0);
  EXPECT_DOUBLE_EQ(timer.seconds("gen cand"), 3.0);

  // Ad-hoc names still work via the fallback map, and totals() shows both
  // kinds (zero-valued interned phases are omitted).
  timer.add("custom phase", 0.5);
  auto totals = timer.totals();
  EXPECT_EQ(totals.size(), 2u);
  EXPECT_DOUBLE_EQ(totals.at("gen cand"), 3.0);
  EXPECT_DOUBLE_EQ(totals.at("custom phase"), 0.5);

  PhaseTimer other;
  other.add(Phase::kGenCand, 5.0);
  other.add("custom phase", 0.25);
  PhaseTimer peak = timer;
  peak.merge_max(other);
  EXPECT_DOUBLE_EQ(peak.seconds(Phase::kGenCand), 5.0);
  EXPECT_DOUBLE_EQ(peak.seconds("custom phase"), 0.5);

  timer.clear();
  EXPECT_TRUE(timer.totals().empty());
}

TEST(Timer, ScopedPhaseAddsOnDestruction) {
  PhaseTimer timer;
  {
    ScopedPhase phase(timer, "work");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  EXPECT_GT(timer.seconds("work"), 0.0);
}

TEST(Env, StringIntAndFlag) {
  ::setenv("ELMO_TEST_VAR", "17", 1);
  EXPECT_EQ(env_string("ELMO_TEST_VAR").value(), "17");
  EXPECT_EQ(env_long("ELMO_TEST_VAR", -1), 17);
  EXPECT_TRUE(env_flag("ELMO_TEST_VAR"));

  ::setenv("ELMO_TEST_VAR", "off", 1);
  EXPECT_FALSE(env_flag("ELMO_TEST_VAR"));
  ::setenv("ELMO_TEST_VAR", "0", 1);
  EXPECT_FALSE(env_flag("ELMO_TEST_VAR"));
  EXPECT_EQ(env_long("ELMO_TEST_VAR", -1), 0);
  ::setenv("ELMO_TEST_VAR", "junk", 1);
  EXPECT_EQ(env_long("ELMO_TEST_VAR", -1), -1);

  ::unsetenv("ELMO_TEST_VAR");
  EXPECT_FALSE(env_string("ELMO_TEST_VAR").has_value());
  EXPECT_FALSE(env_flag("ELMO_TEST_VAR"));
  EXPECT_EQ(env_long("ELMO_TEST_VAR", 42), 42);
}

TEST(Random, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  Rng c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    auto x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Random, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    auto u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Random, RoughlyUniform) {
  Rng rng(9);
  int buckets[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[rng.below(8)];
  for (int b = 0; b < 8; ++b) {
    EXPECT_GT(buckets[b], n / 8 - n / 40);
    EXPECT_LT(buckets[b], n / 8 + n / 40);
  }
}

}  // namespace
}  // namespace elmo
