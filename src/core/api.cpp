#include "core/api.hpp"

#include "bigint/bigint.hpp"
#include "bigint/checked.hpp"
#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "compress/compression.hpp"
#include "core/combinatorial_parallel.hpp"
#include "core/combined.hpp"
#include "core/estimate.hpp"
#include "core/partitioned_parallel.hpp"
#include "mpsim/communicator.hpp"
#include "network/network.hpp"
#include "nullspace/efm.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/solver.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "resource/governor.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace elmo {

namespace {

/// Zip mpsim traffic counters with the matching per-rank solver ledgers
/// into report entries (either side may be shorter; missing data stays 0).
std::vector<obs::RankEntry> make_rank_entries(
    const mpsim::RunReport& report,
    const std::vector<SolveStats>& rank_stats) {
  std::vector<obs::RankEntry> entries;
  const std::size_t n = std::max(report.ranks.size(), rank_stats.size());
  entries.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    obs::RankEntry entry;
    entry.rank = static_cast<int>(r);
    if (r < report.ranks.size()) {
      const auto& counters = report.ranks[r];
      entry.messages_sent = counters.messages_sent;
      entry.messages_received = counters.messages_received;
      entry.bytes_sent = counters.bytes_sent;
      entry.collectives = counters.collectives;
      entry.memory_peak_bytes = counters.memory_peak;
      entry.wait_data_us = counters.wait_data_us;
      entry.wait_barrier_us = counters.wait_barrier_us;
      entry.wait_straggler_us = counters.wait_straggler_us;
      entry.max_queue_depth = counters.max_queue_depth;
    }
    if (r < rank_stats.size()) {
      entry.phase_seconds = rank_stats[r].phases.totals();
      entry.spill_bytes = rank_stats[r].total_spilled_bytes;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// Map ORIGINAL partition reaction names to reduced-problem names.
std::vector<std::string> reduced_partition_names(
    const CompressedProblem& compressed,
    const std::vector<std::string>& original_names) {
  std::vector<std::string> reduced;
  reduced.reserve(original_names.size());
  for (const auto& name : original_names) {
    auto column = compressed.column_for(name);
    ELMO_REQUIRE(column.has_value(),
                 "partition reaction " + name +
                     " was removed by compression (forced zero flux)");
    reduced.push_back(compressed.reaction_names[*column]);
  }
  return reduced;
}

template <typename Scalar, typename Support>
EfmResult run_with(const CompressedProblem& compressed,
                   const std::vector<bool>& original_reversibility,
                   const EfmOptions& options) {
  EfmResult result;
  Stopwatch watch;
  auto problem = to_problem<Scalar>(compressed);

  SolverOptions solver;
  solver.ordering = options.ordering;
  solver.test = options.test;
  solver.rank_backend = options.rank_backend;
  solver.on_iteration = options.on_iteration;
  solver.record_history = options.record_history;
  solver.audit = options.audit;
  solver.spill = options.spill;
  // A governed run spills by default once the admission check asks for it;
  // an explicit spill.enabled also works without any --mem-limit.
  if (options.mem_limit_bytes > 0) solver.spill.enabled = true;

  std::vector<FluxColumn<Scalar, Support>> columns;
  switch (options.algorithm) {
    case Algorithm::kSerial: {
      auto solved = solve_efms<Scalar, Support>(problem, solver);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.stats);
      break;
    }
    case Algorithm::kCombinatorialParallel: {
      ParallelOptions parallel;
      parallel.num_ranks = options.num_ranks;
      parallel.threads_per_rank = options.threads_per_rank;
      parallel.solver = solver;
      parallel.memory_budget_per_rank = options.memory_budget_per_rank;
      parallel.fault_plan = options.fault_plan;
      parallel.deadlines = options.subset_deadlines;
      auto solved =
          solve_combinatorial_parallel<Scalar, Support>(problem, parallel);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.stats);
      result.message_bytes = solved.ranks.total_bytes_sent();
      result.peak_rank_memory = solved.ranks.max_memory_peak();
      result.ranks = make_rank_entries(solved.ranks, solved.per_rank);
      break;
    }
    case Algorithm::kPartitioned: {
      PartitionedOptions partitioned;
      partitioned.num_ranks = options.num_ranks;
      partitioned.solver = solver;
      partitioned.memory_budget_per_rank = options.memory_budget_per_rank;
      partitioned.fault_plan = options.fault_plan;
      auto solved =
          solve_partitioned_parallel<Scalar, Support>(problem, partitioned);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.stats);
      result.message_bytes = solved.ranks.total_bytes_sent();
      result.peak_rank_memory = solved.peak_rank_bytes;
      result.ranks = make_rank_entries(solved.ranks, solved.per_rank);
      break;
    }
    case Algorithm::kCombined: {
      CombinedOptions combined;
      if (!options.partition_reactions.empty()) {
        combined.partition_reactions =
            reduced_partition_names(compressed, options.partition_reactions);
      }
      combined.qsub = options.qsub;
      combined.num_ranks = options.num_ranks;
      combined.threads_per_rank = options.threads_per_rank;
      combined.solver = solver;
      combined.memory_budget_per_rank = options.memory_budget_per_rank;
      combined.max_extra_splits = options.max_extra_splits;
      combined.retry = options.retry;
      combined.fault_plan = options.fault_plan;
      combined.checkpoint_path = options.checkpoint_path;
      combined.resume_from = options.resume_from;
      combined.subset_deadlines = options.subset_deadlines;
      combined.on_subset = options.on_subset;
      if (options.scale_deadlines_by_estimate &&
          options.subset_deadlines.any()) {
        // Estimate-based deadline scaling: a cheap prefix-run per subset
        // ranks predicted cost; combined scales each subset's deadlines
        // relative to the median.  (estimate.hpp includes combined.hpp, so
        // the model is injected here rather than included there.)
        combined.subset_cost_hint = [&problem](const SubsetSpec& spec) {
          EstimateOptions estimate;
          estimate.pair_budget = 200'000;
          estimate.max_columns = 5'000;
          return estimate_subset<Scalar, Support>(problem, spec, estimate)
              .estimated_pairs;
        };
      }
      auto solved = solve_combined<Scalar, Support>(problem, combined);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.total);
      result.total_retries = solved.total_retries;
      result.simulated_backoff_seconds = solved.simulated_backoff_seconds;
      result.events = std::move(solved.events);
      for (const auto& subset : solved.subsets) {
        SubsetSummary summary;
        summary.label = subset.label;
        summary.num_efms = subset.num_efms;
        summary.candidate_pairs = subset.stats.total_pairs_probed;
        summary.seconds = subset.seconds;
        summary.gen_cand_seconds =
            subset.stats.phases.seconds(Phase::kGenCand);
        summary.rank_test_seconds =
            subset.stats.phases.seconds(Phase::kRankTest);
        summary.communicate_seconds =
            subset.stats.phases.seconds(Phase::kCommunicate);
        summary.merge_seconds = subset.stats.phases.seconds(Phase::kMerge);
        summary.extra_splits = subset.extra_splits;
        summary.attempts = subset.attempts;
        summary.backoff_seconds = subset.backoff_seconds;
        summary.resumed = subset.resumed;
        summary.ranks = make_rank_entries(subset.ranks, subset.rank_stats);
        result.subsets.push_back(std::move(summary));
        result.message_bytes += subset.ranks.total_bytes_sent();
        result.peak_rank_memory =
            std::max(result.peak_rank_memory, subset.ranks.max_memory_peak());
      }
      break;
    }
  }

  auto reduced_modes = columns_to_bigint(columns);
  result.modes.reserve(reduced_modes.size());
  for (const auto& mode : reduced_modes)
    result.modes.push_back(compressed.expand(mode));
  canonicalize_modes(result.modes, original_reversibility);

  result.reaction_names = compressed.original_reaction_names;
  result.compression_stats = compressed.stats;
  result.reduced_reactions = compressed.num_reactions();
  result.reduced_metabolites = compressed.num_metabolites();
  result.seconds = watch.seconds();
  result.used_bigint = std::is_same_v<Scalar, BigInt>;
  return result;
}

template <typename Scalar>
EfmResult run_with_support(const CompressedProblem& compressed,
                           const std::vector<bool>& original_reversibility,
                           const EfmOptions& options) {
  // The prepared (split) problem can gain one column per reversible
  // reaction in the worst case; size the support type for that bound so a
  // mid-run split never overflows the single-word representation.
  const std::size_t worst_case =
      compressed.num_reactions() +
      static_cast<std::size_t>(std::count(compressed.reversible.begin(),
                                          compressed.reversible.end(), true));
  if (worst_case <= Bitset64::capacity()) {
    return run_with<Scalar, Bitset64>(compressed, original_reversibility,
                                      options);
  }
  return run_with<Scalar, DynBitset>(compressed, original_reversibility,
                                     options);
}

}  // namespace

EfmResult compute_efms(const CompressedProblem& compressed,
                       const std::vector<bool>& original_reversibility,
                       const EfmOptions& options) {
  // Configure the process-wide governor for this solve: fresh ledger, the
  // requested limit.  The spill/peak counters accumulate across an int64 →
  // BigInt fallback (it is one logical computation).
  auto& governor = resource::MemoryGovernor::global();
  governor.reset();
  governor.set_limit(options.mem_limit_bytes);
  auto finish = [&governor](EfmResult result) {
    result.mem_limit_bytes = governor.limit();
    result.mem_peak_bytes = governor.peak_usage();
    result.spill_bytes = governor.spill_bytes();
    result.spill_blocks = governor.spill_blocks();
    return result;
  };
  if (options.force_bigint) {
    return finish(run_with_support<BigInt>(compressed, original_reversibility,
                                           options));
  }
  try {
    return finish(run_with_support<CheckedI64>(compressed,
                                               original_reversibility,
                                               options));
  } catch (const OverflowError&) {
    // Values outgrew 64 bits mid-computation: redo exactly.
    auto result = run_with_support<BigInt>(compressed,
                                           original_reversibility, options);
    result.stats.bigint_fallback = true;
    return finish(std::move(result));
  } catch (const RetryExhaustedError&) {
    if (!options.retry.bigint_fallback) throw;
    // The retry ladder's last rung: rerun the whole computation in BigInt.
    // A shared FaultPlan keeps its cumulative trigger state, so one-shot
    // faults that doomed the int64 attempts do not refire here.
    auto result = run_with_support<BigInt>(compressed,
                                           original_reversibility, options);
    result.stats.bigint_fallback = true;
    return finish(std::move(result));
  }
}

EfmResult compute_efms(const Network& network, const EfmOptions& options) {
  auto compressed = compress(network, options.compression);
  return compute_efms(compressed, network.reversibility(), options);
}

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSerial:
      return "serial";
    case Algorithm::kCombinatorialParallel:
      return "parallel";
    case Algorithm::kCombined:
      return "combined";
    case Algorithm::kPartitioned:
      return "partitioned";
  }
  return "unknown";
}

obs::SolveReport make_solve_report(const EfmResult& result,
                                   const EfmOptions& options,
                                   const std::string& network_label) {
  obs::SolveReport report;
  report.network = network_label;
  report.algorithm = algorithm_name(options.algorithm);
  report.num_ranks = options.num_ranks;
  report.config["test"] = options.test == ElementarityTest::kRank
                              ? "rank"
                              : "combinatorial";
  report.config["rank_backend"] =
      options.rank_backend == RankTestBackend::kSparse    ? "sparse"
      : options.rank_backend == RankTestBackend::kModular ? "modular"
                                                          : "exact";
  report.config["threads_per_rank"] =
      std::to_string(options.threads_per_rank);
  if (options.algorithm == Algorithm::kCombined) {
    report.config["qsub"] = std::to_string(options.qsub);
    report.config["max_extra_splits"] =
        std::to_string(options.max_extra_splits);
  }
  if (options.memory_budget_per_rank != 0) {
    report.config["memory_budget_per_rank"] =
        std::to_string(options.memory_budget_per_rank);
  }
  if (options.mem_limit_bytes != 0)
    report.config["mem_limit_bytes"] = std::to_string(options.mem_limit_bytes);
  if (!options.checkpoint_path.empty())
    report.config["checkpoint_path"] = options.checkpoint_path;
  if (!options.resume_from.empty())
    report.config["resume_from"] = options.resume_from;
  report.config["used_bigint"] = result.used_bigint ? "true" : "false";
  report.config["reduced_reactions"] =
      std::to_string(result.reduced_reactions);
  report.config["reduced_metabolites"] =
      std::to_string(result.reduced_metabolites);

  report.num_efms = result.num_modes();
  report.seconds = result.seconds;

  const SolveStats& stats = result.stats;
  report.totals["pairs_probed"] = stats.total_pairs_probed;
  report.totals["pretest_survivors"] = stats.total_pretest_survivors;
  report.totals["rank_tests"] = stats.total_rank_tests;
  report.totals["rank_sparse_hits"] = stats.total_rank_sparse_hits;
  report.totals["rank_warmstart_reuses"] = stats.total_rank_warmstart_reuses;
  report.totals["rank_dense_fallbacks"] = stats.total_rank_dense_fallbacks;
  report.totals["rank_gathered_nnz"] = stats.total_rank_gathered_nnz;
  report.totals["accepted"] = stats.total_accepted;
  report.totals["duplicates_removed"] = stats.total_duplicates_removed;
  report.totals["iterations"] = stats.iterations;
  report.totals["message_bytes"] = result.message_bytes;
  report.totals["total_retries"] = result.total_retries;
  report.peak_columns = stats.peak_columns;
  report.peak_matrix_bytes = stats.peak_matrix_bytes;
  report.bigint_fallback = stats.bigint_fallback;
  report.phase_seconds = stats.phases.totals();
  report.ranks = result.ranks;

  for (const auto& subset : result.subsets) {
    obs::SubsetEntry entry;
    entry.label = subset.label;
    entry.num_efms = subset.num_efms;
    entry.seconds = subset.seconds;
    entry.attempts = static_cast<int>(subset.attempts);
    entry.extra_splits = static_cast<int>(subset.extra_splits);
    entry.resumed = subset.resumed;
    entry.totals["candidate_pairs"] = subset.candidate_pairs;
    entry.phase_seconds[phase_name(Phase::kGenCand)] =
        subset.gen_cand_seconds;
    entry.phase_seconds[phase_name(Phase::kRankTest)] =
        subset.rank_test_seconds;
    entry.phase_seconds[phase_name(Phase::kCommunicate)] =
        subset.communicate_seconds;
    entry.phase_seconds[phase_name(Phase::kMerge)] = subset.merge_seconds;
    entry.ranks = subset.ranks;
    report.subsets.push_back(std::move(entry));
  }

  report.iterations.reserve(stats.history.size());
  for (const auto& it : stats.history) {
    obs::IterationEntry entry;
    entry.row = static_cast<std::int64_t>(it.row);
    entry.positives = it.positives;
    entry.negatives = it.negatives;
    entry.pairs_probed = it.pairs_probed;
    entry.pretest_survivors = it.pretest_survivors;
    entry.duplicates_removed = it.duplicates_removed;
    entry.rank_tests = it.rank_tests;
    entry.accepted = it.accepted;
    entry.columns_after = it.columns_after;
    report.iterations.push_back(entry);
  }

  report.events = result.events;
  report.peak_rss_bytes = obs::process_peak_rss_bytes();
  report.rss_bytes = obs::process_current_rss_bytes();
  report.mem_limit_bytes = result.mem_limit_bytes;
  report.mem_peak_bytes = result.mem_peak_bytes;
  report.spill_bytes = result.spill_bytes;
  report.spill_blocks = result.spill_blocks;
  report.totals["spill_bytes"] = result.spill_bytes;
  report.totals["spill_blocks"] = result.spill_blocks;

  // Counter-derived flow attribution (waits, imbalance, per-subset
  // utilization).  Callers holding a trace re-run analyze_flow with the
  // recorded events to add the critical path and flow-pairing stats.
  report.flow = obs::analyze_flow(report, nullptr);
  return report;
}

}  // namespace elmo
