// Pass 4 — the historical elmo_lint project rules, migrated onto the
// shared SourceFile core (same stripping, same lint:allow escapes):
//
//   naked-new         no `new` outside an owning wrapper
//   no-rand           no rand()/srand(): runs must be deterministic
//   catch-all         `catch (...)` must rethrow, capture
//                     std::current_exception(), or be annotated
//   reinterpret-cast  every reinterpret_cast carries an annotation with a
//                     justification
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"

namespace elmo_analyze {

namespace {

/// `catch (...)` handler bodies must not swallow: look for a rethrow or an
/// exception_ptr capture inside the matching brace block.
bool catch_block_handles(const std::string& stripped, std::size_t from) {
  std::size_t open = stripped.find('{', from);
  if (open == std::string::npos) return false;
  int depth = 0;
  std::size_t end = open;
  for (std::size_t i = open; i < stripped.size(); ++i) {
    if (stripped[i] == '{') ++depth;
    if (stripped[i] == '}') {
      --depth;
      if (depth == 0) {
        end = i;
        break;
      }
    }
  }
  const std::string block = stripped.substr(open, end - open + 1);
  return find_word(block, "throw") != std::string::npos ||
         block.find("current_exception") != std::string::npos ||
         block.find("rethrow_exception") != std::string::npos;
}

/// Position of `catch` immediately followed by `( ... )` with only dots
/// and whitespace between the parentheses.
std::size_t find_catch_all(const std::string& stripped, std::size_t from) {
  std::size_t pos = from;
  while ((pos = find_word(stripped, "catch", pos)) != std::string::npos) {
    std::size_t p = pos + 5;
    while (p < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[p])) != 0) {
      ++p;
    }
    if (p < stripped.size() && stripped[p] == '(') {
      ++p;
      std::size_t dots = 0;
      while (p < stripped.size() &&
             (stripped[p] == '.' ||
              std::isspace(static_cast<unsigned char>(stripped[p])) != 0)) {
        if (stripped[p] == '.') ++dots;
        ++p;
      }
      if (p < stripped.size() && stripped[p] == ')' && dots == 3) return pos;
    }
    pos += 5;
  }
  return std::string::npos;
}

}  // namespace

void pass_lint(const Project& project, const Options& opts,
               std::vector<Finding>& findings) {
  (void)opts;
  for (const SourceFile& f : project.files) {
    for (std::size_t i = 0; i < f.stripped_lines.size(); ++i) {
      const std::string& line = f.stripped_lines[i];
      const std::size_t lineno = i + 1;
      if (find_word(line, "new") != std::string::npos &&
          !f.allows(lineno, "naked-new")) {
        findings.push_back(
            {"lint", "naked-new", f.path, lineno,
             "raw `new`: use std::make_unique/containers, or annotate an "
             "intentional leak with lint:allow(naked-new)",
             false});
      }
      if ((find_word(line, "rand") != std::string::npos ||
           find_word(line, "srand") != std::string::npos) &&
          !f.allows(lineno, "no-rand")) {
        findings.push_back({"lint", "no-rand", f.path, lineno,
                            "rand()/srand() breaks deterministic runs: use a "
                            "seeded <random> engine",
                            false});
      }
      if (line.find("reinterpret_cast") != std::string::npos &&
          !f.allows(lineno, "reinterpret-cast")) {
        findings.push_back(
            {"lint", "reinterpret-cast", f.path, lineno,
             "unannotated reinterpret_cast: justify it with "
             "lint:allow(reinterpret-cast) on this or the previous line",
             false});
      }
    }

    // catch-all needs the whole text (handler blocks span lines).
    std::size_t pos = 0;
    while ((pos = find_catch_all(f.stripped, pos)) != std::string::npos) {
      const std::size_t lineno = line_of_offset(f.raw, pos);
      if (!f.allows(lineno, "catch-all") &&
          !catch_block_handles(f.stripped, pos)) {
        findings.push_back(
            {"lint", "catch-all", f.path, lineno,
             "catch (...) swallows the exception: rethrow, capture "
             "std::current_exception(), or annotate with "
             "lint:allow(catch-all)",
             false});
      }
      pos += 5;
    }
  }
}

}  // namespace elmo_analyze
