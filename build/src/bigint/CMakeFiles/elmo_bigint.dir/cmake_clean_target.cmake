file(REMOVE_RECURSE
  "libelmo_bigint.a"
)
