# Empty compiler generated dependencies file for bench_micro_arith.
# This may be replaced when dependencies are built.
