#include "analyze/source.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace elmo_analyze {

std::string strip_noncode(const std::string& text) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_terminator;  // e.g. )delim" for R"delim(
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim".  The d-char-seq is at most
          // 16 characters and may not contain parentheses, backslashes,
          // quotes or whitespace — searching for '(' without that bound
          // could cross the literal's own closing quote (or a newline) on
          // a malformed opener, manufacture a garbage terminator, and
          // swallow every line of real code up to its accidental match.
          std::size_t open = std::string::npos;
          for (std::size_t j = i + 2; j < text.size() && j <= i + 2 + 16;
               ++j) {
            const char d = text[j];
            if (d == '(') {
              open = j;
              break;
            }
            if (d == ')' || d == '"' || d == '\\' ||
                std::isspace(static_cast<unsigned char>(d)) != 0) {
              break;  // not a valid d-char: this is no raw string
            }
          }
          if (open != std::string::npos) {
            raw_terminator = ")" + text.substr(i + 2, open - (i + 2)) + "\"";
            for (std::size_t j = i; j <= open && j < text.size(); ++j) {
              if (text[j] != '\n') out[j] = ' ';
            }
            i = open;
            state = State::kRawString;
          } else {
            // Invalid opener: treat the quote as an ordinary string so the
            // following characters cannot leak through as code.
            out[i] = ' ';
            out[i + 1] = ' ';
            ++i;
            state = State::kString;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not char literals.
          if (i > 0 && std::isdigit(static_cast<unsigned char>(text[i - 1]))) {
            break;
          }
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size() && text[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size() && text[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t j = 0; j < raw_terminator.size(); ++j) {
            out[i + j] = ' ';
          }
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_word(const std::string& text, const std::string& word,
                      std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

bool SourceFile::allows(std::size_t line, const std::string& rule) const {
  const std::string tag = "lint:allow(" + rule + ")";
  if (line == 0 || line > raw_lines.size()) return false;
  const std::size_t idx = line - 1;
  if (raw_lines[idx].find(tag) != std::string::npos) return true;
  return idx > 0 && raw_lines[idx - 1].find(tag) != std::string::npos;
}

bool load_source(const std::string& abs_path, const std::string& report_path,
                 SourceFile& out) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out.path = report_path;
  out.abs_path = abs_path;
  out.raw = buffer.str();
  out.stripped = strip_noncode(out.raw);
  out.raw_lines = split_lines(out.raw);
  out.stripped_lines = split_lines(out.stripped);
  out.is_header = report_path.size() >= 4 &&
                  report_path.compare(report_path.size() - 4, 4, ".hpp") == 0;
  // Module: first directory component after a leading "src/".
  out.module.clear();
  std::size_t src_pos = report_path.rfind("src/");
  if (src_pos != std::string::npos &&
      (src_pos == 0 || report_path[src_pos - 1] == '/')) {
    const std::size_t mod_start = src_pos + 4;
    const std::size_t mod_end = report_path.find('/', mod_start);
    if (mod_end != std::string::npos) {
      out.module = report_path.substr(mod_start, mod_end - mod_start);
    }
  }
  // Tree: which walked top-level tree the path lives under.  Paths outside
  // all of them (fixtures, ad-hoc files) stay "", which the module-gated
  // passes treat as "analyze unconditionally".
  out.tree.clear();
  for (const char* tree : {"src", "tools", "bench", "examples"}) {
    const std::string needle = std::string(tree) + "/";
    const std::size_t pos = report_path.rfind(needle);
    if (pos != std::string::npos &&
        (pos == 0 || report_path[pos - 1] == '/')) {
      out.tree = tree;
      break;
    }
  }
  return true;
}

}  // namespace elmo_analyze
