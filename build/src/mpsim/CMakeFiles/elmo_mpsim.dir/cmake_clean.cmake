file(REMOVE_RECURSE
  "CMakeFiles/elmo_mpsim.dir/communicator.cpp.o"
  "CMakeFiles/elmo_mpsim.dir/communicator.cpp.o.d"
  "libelmo_mpsim.a"
  "libelmo_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
