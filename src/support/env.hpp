// Environment-variable helpers used by benches to scale workloads
// (e.g. ELMO_BENCH_FULL=1 runs the complete paper-scale instances).
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

namespace elmo {

/// Value of environment variable `name`, or nullopt if unset.
inline std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

/// Integer value of `name`, or `fallback` if unset/unparsable.
inline long env_long(const char* name, long fallback) {
  auto value = env_string(name);
  if (!value) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str()) return fallback;
  return parsed;
}

/// True iff `name` is set to something other than "", "0", "false", "off".
inline bool env_flag(const char* name) {
  auto value = env_string(name);
  if (!value) return false;
  return !(*value == "" || *value == "0" || *value == "false" ||
           *value == "off");
}

}  // namespace elmo
