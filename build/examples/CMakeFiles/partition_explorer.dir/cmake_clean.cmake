file(REMOVE_RECURSE
  "CMakeFiles/partition_explorer.dir/partition_explorer.cpp.o"
  "CMakeFiles/partition_explorer.dir/partition_explorer.cpp.o.d"
  "partition_explorer"
  "partition_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
