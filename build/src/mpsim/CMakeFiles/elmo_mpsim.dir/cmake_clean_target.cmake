file(REMOVE_RECURSE
  "libelmo_mpsim.a"
)
