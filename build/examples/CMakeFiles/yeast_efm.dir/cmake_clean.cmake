file(REMOVE_RECURSE
  "CMakeFiles/yeast_efm.dir/yeast_efm.cpp.o"
  "CMakeFiles/yeast_efm.dir/yeast_efm.cpp.o.d"
  "yeast_efm"
  "yeast_efm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yeast_efm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
