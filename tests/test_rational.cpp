// Tests for exact rationals over CheckedI64 and BigInt.
#include "bigint/rational.hpp"

#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "support/error.hpp"

namespace elmo {
namespace {

template <typename T>
class RationalTest : public ::testing::Test {};

using IntKinds = ::testing::Types<CheckedI64, BigInt>;
TYPED_TEST_SUITE(RationalTest, IntKinds);

TYPED_TEST(RationalTest, NormalisesOnConstruction) {
  using R = Rational<TypeParam>;
  R half = R::from_i64(2, 4);
  EXPECT_EQ(half.num(), scalar_from_i64<TypeParam>(1));
  EXPECT_EQ(half.den(), scalar_from_i64<TypeParam>(2));

  // Denominator sign moves to the numerator.
  R neg = R::from_i64(3, -6);
  EXPECT_EQ(neg.num(), scalar_from_i64<TypeParam>(-1));
  EXPECT_EQ(neg.den(), scalar_from_i64<TypeParam>(2));

  // Zero normalises to 0/1.
  R zero = R::from_i64(0, 17);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.den(), scalar_from_i64<TypeParam>(1));
}

TYPED_TEST(RationalTest, ZeroDenominatorThrows) {
  using R = Rational<TypeParam>;
  EXPECT_THROW(R::from_i64(1, 0), InvalidArgumentError);
}

TYPED_TEST(RationalTest, Arithmetic) {
  using R = Rational<TypeParam>;
  R a = R::from_i64(1, 6);
  R b = R::from_i64(1, 10);
  EXPECT_EQ(a + b, R::from_i64(4, 15));
  EXPECT_EQ(a - b, R::from_i64(1, 15));
  EXPECT_EQ(a * b, R::from_i64(1, 60));
  EXPECT_EQ(a / b, R::from_i64(5, 3));
  EXPECT_EQ(-a, R::from_i64(-1, 6));
}

TYPED_TEST(RationalTest, DivisionByZeroThrows) {
  using R = Rational<TypeParam>;
  EXPECT_THROW(R::from_i64(1, 2) / R::from_i64(0), InvalidArgumentError);
  EXPECT_THROW(R::from_i64(0).reciprocal(), InvalidArgumentError);
}

TYPED_TEST(RationalTest, Ordering) {
  using R = Rational<TypeParam>;
  EXPECT_LT(R::from_i64(1, 3), R::from_i64(1, 2));
  EXPECT_LT(R::from_i64(-1, 2), R::from_i64(-1, 3));
  EXPECT_EQ(R::from_i64(2, 4), R::from_i64(1, 2));
  EXPECT_GT(R::from_i64(7, 3), R::from_i64(2));
}

TYPED_TEST(RationalTest, ToStringAndDouble) {
  using R = Rational<TypeParam>;
  EXPECT_EQ(R::from_i64(3).to_string(), "3");
  EXPECT_EQ(R::from_i64(-3, 7).to_string(), "-3/7");
  EXPECT_DOUBLE_EQ(R::from_i64(1, 4).to_double(), 0.25);
}

TEST(RationalCheckedOverflow, PropagatesToCaller) {
  RationalI64 huge = RationalI64::from_i64(INT64_MAX / 2, 3);
  // (max/2)/3 + (max/2)/5 overflows the cross-multiplied numerator.
  EXPECT_THROW(huge + RationalI64::from_i64(INT64_MAX / 2, 5), OverflowError);
}

TEST(RationalBigInt, NoOverflowForHugeValues) {
  BigRational huge(BigInt::from_string("92233720368547758070"),
                   BigInt::from_string("3"));
  BigRational other(BigInt::from_string("92233720368547758070"),
                    BigInt::from_string("5"));
  BigRational sum = huge + other;
  EXPECT_EQ(sum.to_string(), "147573952589676412912/3");
}

}  // namespace
}  // namespace elmo
