// Microbenchmark: elementarity-test backends on realistic yeast supports.
//
// Compares the exact Bareiss rank test (paper's reference), the modular
// Z_(2^61-1) test (this library's default), and the combinatorial
// support-subset test at several column counts — the data behind the
// choice of default backend.
#include <benchmark/benchmark.h>

#include "bitset/dynbitset.hpp"
#include "compress/compression.hpp"
#include "models/yeast.hpp"
#include "nullspace/initial_basis.hpp"
#include "nullspace/modular_rank.hpp"
#include "nullspace/problem.hpp"
#include "nullspace/rank_test.hpp"
#include "nullspace/reversible_split.hpp"
#include "support/random.hpp"

namespace {

using namespace elmo;

struct Fixture {
  Fixture()
      : prepared(prepare_problem(
            to_problem<CheckedI64>(compress(models::yeast_network_1())))),
        basis(compute_initial_basis<CheckedI64, DynBitset>(prepared.problem)),
        exact(prepared.problem.stoichiometry),
        modular_tester(prepared.problem.stoichiometry, basis.columns) {
    // Supports near the accept/reject boundary (size ~ rank +- 1).
    Rng rng(33);
    const std::size_t q = prepared.problem.num_reactions();
    for (int i = 0; i < 256; ++i) {
      DynBitset support(q);
      std::size_t size = basis.stoichiometry_rank - 1 + rng.below(3);
      while (support.count() < size) support.set(rng.below(q));
      supports.push_back(std::move(support));
    }
  }

  PreparedProblem<CheckedI64> prepared;
  InitialBasis<CheckedI64, DynBitset> basis;
  RankTester<CheckedI64> exact;
  ModularRankTester<CheckedI64> modular_tester;
  std::vector<DynBitset> supports;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_RankTestExactBareiss(benchmark::State& state) {
  auto& f = fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.exact.is_elementary(f.supports[i++ % f.supports.size()]));
  }
}
BENCHMARK(BM_RankTestExactBareiss);

void BM_RankTestModular(benchmark::State& state) {
  auto& f = fixture();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.modular_tester.is_elementary(f.supports[i++ % f.supports.size()]));
  }
}
BENCHMARK(BM_RankTestModular);

void BM_CombinatorialSubsetTest(benchmark::State& state) {
  auto& f = fixture();
  // Snapshot of `columns` current matrices at various widths.
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  std::vector<DynBitset> columns;
  Rng rng(7);
  const std::size_t q = f.prepared.problem.num_reactions();
  for (std::size_t c = 0; c < width; ++c) {
    DynBitset s(q);
    std::size_t size = 8 + rng.below(20);
    while (s.count() < size) s.set(rng.below(q));
    columns.push_back(std::move(s));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& candidate = f.supports[i++ % f.supports.size()];
    bool elementary = true;
    for (const auto& support : columns) {
      if (support != candidate && support.is_subset_of(candidate)) {
        elementary = false;
        break;
      }
    }
    benchmark::DoNotOptimize(elementary);
  }
}
BENCHMARK(BM_CombinatorialSubsetTest)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
