// Sparse, amortized modular rank-test engine.
//
// Same decision procedure as ModularRankTester — elimination over
// Z_(2^61-1), accepts certified for kernel-vector candidates, rejects
// Monte-Carlo (see nullspace/modular_rank.hpp) — restructured around the
// two sources of waste in the dense tester:
//
//   * Gather.  The dense tester copies a full m x |S| (or (q-|S|) x k)
//     submatrix per candidate.  Here both matrices live in start/index/
//     value sparse stores (linalg/sparse.hpp) and only the nonzero entries
//     of the candidate's slice are touched.
//
//   * Re-elimination.  Work common to every candidate is factored out and
//     amortized at two levels:
//
//     - Construction: N is replaced by its reduced row echelon form over
//       Z_p, computed ONCE.  Row operations preserve every column
//       dependency, so rank_p(N[:, S]) == rank_p(R[:, S]); R has only
//       rank(N) nonzero rows, its pivot columns are unit vectors (a free
//       rank increment each — no elimination), and the per-candidate
//       problem shrinks to a small residual over the non-pivot columns
//       with the already-pivoted rows struck out.
//
//     - Iteration (warm start): every candidate produced while processing
//       row r has zero flux on r and on every row no live column touches.
//       begin_iteration() eliminates that shared block of kernel rows once
//       — singleton rows pivot their column for free, the rest become an
//       echelon block — and then pre-reduces EVERY remaining kernel row
//       against the block into a per-iteration sparse store.  A warm
//       K-side test does no elimination against the cache at all: it
//       gathers its few candidate-specific rows already reduced (solver
//       candidates leave <= nullity+1 residual rows by the support-union
//       bound).  The cache is invalidated by the next begin_iteration();
//       a support that intersects the cached rows (arbitrary caller) is
//       detected per call and served cold off the original row store, so
//       answers never depend on cache state.
//
// The K-side/N-side choice uses exact gathered-nnz counts from the sparse
// stores instead of dense dimension products; candidates whose sparse
// estimate exceeds the dense one by a margin are delegated to an embedded
// dense-modular tester (counted as rank_dense_fallbacks — `elmo_stat diff`
// watches that rate).  Accept/reject equals the dense-modular tester's
// verdict: both compute ranks of the same matrices over the same prime.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "nullspace/flux_column.hpp"
#include "nullspace/modular_rank.hpp"
#include "nullspace/stats.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace elmo {

/// Counters accumulated per is_elementary() call; drained once per
/// iteration into IterationStats (and from there report.json totals and
/// the run ledger).
struct RankEngineStats {
  std::uint64_t tests = 0;
  std::uint64_t sparse_hits = 0;       // served by the sparse paths
  std::uint64_t warmstart_reuses = 0;  // K-side tests that reused the cache
  std::uint64_t dense_fallbacks = 0;   // delegated to the dense tester
  std::uint64_t gathered_nnz = 0;      // entries gathered across all tests
};

/// Which formulation is_elementary uses; kAuto picks per candidate from
/// the nnz cost model.  Tests and the bench force a side to exercise both.
enum class RankTestSide { kAuto, kNSide, kKSide };

struct SparseRankConfig {
  RankTestSide force_side = RankTestSide::kAuto;
  /// Delegate a candidate to the embedded dense-modular tester when the
  /// sparse estimate exceeds margin x the dense estimate (compaction
  /// overhead loses on very dense residuals).  Counted per delegation.
  double dense_fallback_margin = 2.0;
};

template <typename Scalar>
class SparseRankTester {
 public:
  /// `stoichiometry` is the reduced m x q matrix; `kernel_columns` the
  /// initial nullspace basis (one entry per basis column, values length q).
  template <typename Support>
  SparseRankTester(
      const Matrix<Scalar>& stoichiometry,
      const std::vector<FluxColumn<Scalar, Support>>& kernel_columns,
      SparseRankConfig config = {})
      : config_(config),
        m_(stoichiometry.rows()),
        q_(stoichiometry.cols()),
        k_(kernel_columns.size()),
        dense_(stoichiometry, kernel_columns) {
    build_rref(stoichiometry);
    kernel_rows_ = SparseCscU64::build(
        k_, q_, [&](std::size_t c, std::size_t r) {
          return modular::from_scalar(kernel_columns[c].values[r]);
        });
    row_kill_stamp_.assign(r_, 0);
    row_slot_stamp_.assign(r_, 0);
    row_slot_.assign(r_, 0);
    col_kill_stamp_.assign(k_, 0);
    col_slot_stamp_.assign(k_, 0);
    col_slot_.assign(k_, 0);
    cache_row_flag_.assign(q_, 0);
    col_killed_base_.assign(k_, 0);
    iter_start_.assign(q_ + 1, 0);
  }

  /// Rank of the stoichiometry over Z_p (== the exact rank unless p
  /// divides a maximal minor).
  [[nodiscard]] std::size_t stoichiometry_rank_mod_p() const { return r_; }

  /// Install the iteration-shared K-side block: `common_rows` (sorted,
  /// deduplicated) must be rows outside EVERY support this cache is meant
  /// to accelerate — the processed row plus the rows no live column
  /// touches (iteration_common_zero_rows).  Invalidates the previous
  /// cache.  Callers violating the contract lose the speedup, never
  /// correctness: each is_elementary() re-checks its support against the
  /// cached rows and serves intersecting supports cold.
  void begin_iteration(const std::vector<std::uint32_t>& common_rows) {
    for (std::uint32_t r : cache_rows_) cache_row_flag_[r] = 0;
    for (std::uint32_t c : cache_killed_) col_killed_base_[c] = 0;
    cache_rows_ = common_rows;
    cache_killed_.clear();
    cache_pivot_cols_.clear();
    cache_pivot_rows_.clear();
    for (std::uint32_t r : cache_rows_) {
      ELMO_DCHECK(r < q_, "common row out of range");
      cache_row_flag_[r] = 1;
    }
    // Singleton rows pivot their column with no fill; done first so the
    // echelon block below never carries entries at killed columns.
    std::vector<std::uint32_t> dense_rows;
    for (std::uint32_t r : cache_rows_) {
      const std::size_t nnz = kernel_rows_.count(r);
      if (nnz == 0) continue;
      if (nnz == 1) {
        const std::uint32_t c = kernel_rows_.indices(r)[0];
        if (col_killed_base_[c]) continue;  // duplicate singleton: rank 0
        col_killed_base_[c] = 1;
        cache_killed_.push_back(c);
      } else {
        dense_rows.push_back(r);
      }
    }
    // Echelonize the remaining common rows once.  Pivot rows are stored
    // normalized (pivot entry 1) and IMMUTABLE: per-candidate reduction
    // reads them, never writes, so the cache survives any number of tests.
    for (std::uint32_t r : dense_rows) {
      temp_.assign(k_, 0);
      const std::uint32_t* idx = kernel_rows_.indices(r);
      const std::uint64_t* val = kernel_rows_.values(r);
      for (std::size_t e = 0; e < kernel_rows_.count(r); ++e) {
        if (!col_killed_base_[idx[e]]) temp_[idx[e]] = val[e];
      }
      reduce_against_cache(temp_.data());
      std::size_t pc = 0;
      while (pc < k_ && temp_[pc] == 0) ++pc;
      if (pc == k_) continue;  // dependent on the cached block: rank 0
      const std::uint64_t inv = modular::invmod(temp_[pc]);
      for (std::size_t c = pc; c < k_; ++c) {
        if (temp_[c]) temp_[c] = modular::mulmod(temp_[c], inv);
      }
      cache_pivot_cols_.push_back(static_cast<std::uint32_t>(pc));
      cache_pivot_rows_.push_back(temp_);
    }
    // Pre-reduce every non-cache kernel row against the block ONCE into a
    // per-iteration sparse store.  Reduced rows have zeros at every killed
    // and pivoted column (pivot rows carry no killed-column entries and
    // sequential reduction clears each pivot column in echelon order), so
    // a warm test gathers residual rows with no elimination of its own.
    iter_idx_.clear();
    iter_val_.clear();
    for (std::uint32_t r = 0; r < q_; ++r) {
      if (!cache_row_flag_[r] && kernel_rows_.count(r) != 0) {
        const std::uint32_t* idx = kernel_rows_.indices(r);
        const std::uint64_t* val = kernel_rows_.values(r);
        const std::size_t nnz = kernel_rows_.count(r);
        if (cache_pivot_rows_.empty()) {
          for (std::size_t e = 0; e < nnz; ++e) {
            if (col_killed_base_[idx[e]]) continue;
            iter_idx_.push_back(idx[e]);
            iter_val_.push_back(val[e]);
          }
        } else {
          temp_.assign(k_, 0);
          for (std::size_t e = 0; e < nnz; ++e) {
            if (!col_killed_base_[idx[e]]) temp_[idx[e]] = val[e];
          }
          reduce_against_cache(temp_.data());
          for (std::uint32_t c = 0; c < k_; ++c) {
            if (temp_[c] == 0) continue;
            iter_idx_.push_back(c);
            iter_val_.push_back(temp_[c]);
          }
        }
      }
      iter_start_[r + 1] = iter_idx_.size();
    }
    cache_active_ = true;
  }

  /// True iff nullity(N restricted to `support`) == 1, computed mod p.
  /// Accepts are exact; rejects are Monte-Carlo (file comment).
  template <typename Support>
  bool is_elementary(const Support& support) {
    ++stats_.tests;
    indices_.clear();
    support.append_indices(indices_);
    const std::size_t s = indices_.size();
    if (s == 0) return false;
    if (s > r_ + 1) return false;  // nullity_p >= s - rank_p >= 2

    // Warm-cache validity for the K-side: the cached block only covers
    // rows outside the support.  Checked once here so both the cost model
    // and test_k_side see the same answer.
    bool warm = cache_active_;
    if (warm) {
      for (std::uint32_t r : cache_rows_) {
        if (support.test(r)) {
          warm = false;
          break;
        }
      }
    }

    // Exact gathered-nnz cost model.  The N-side scan is O(s) off the
    // column store; the K-side scan walks the complement rows' counts,
    // skipping rows the warm cache already eliminated — for solver-shaped
    // candidates (complement nearly equal to the cached rows) this is what
    // makes the K-side estimate collapse to a handful of residual rows.
    std::size_t pivot_overlap = 0;
    std::size_t n_gather = 0;
    for (std::uint32_t j : indices_) {
      if (pivot_row_of_col_[j] != kNoPivot) {
        ++pivot_overlap;
      } else {
        n_gather += rref_cols_.count(j);
      }
    }
    const std::size_t d = s - pivot_overlap;
    std::size_t k_singletons = 0;
    std::size_t k_rows = 0;
    std::size_t k_gather = 0;
    {
      std::size_t next = 0;
      for (std::uint32_t r = 0; r < q_; ++r) {
        if (next < s && indices_[next] == r) {
          ++next;
          continue;
        }
        if (warm && cache_row_flag_[r]) continue;
        const std::size_t nnz = warm ? iter_count(r) : kernel_rows_.count(r);
        if (nnz == 0) continue;
        if (nnz == 1) {
          ++k_singletons;
        } else {
          ++k_rows;
          k_gather += nnz;
        }
      }
    }
    const std::size_t k_base =
        warm ? cache_killed_.size() + cache_pivot_rows_.size() : 0;
    const std::size_t active_n = std::min(r_ - pivot_overlap, n_gather);
    const std::size_t alive_k = std::min(
        k_ - std::min(k_base + k_singletons, k_), k_gather);
    const double est_n = 2.0 * static_cast<double>(n_gather) +
                         static_cast<double>(active_n) *
                             static_cast<double>(d) * static_cast<double>(d);
    const double est_k = 2.0 * static_cast<double>(k_gather) +
                         static_cast<double>(k_rows) *
                             static_cast<double>(alive_k) *
                             static_cast<double>(alive_k);
    RankTestSide side = config_.force_side;
    if (side == RankTestSide::kAuto) {
      side = est_n <= est_k ? RankTestSide::kNSide : RankTestSide::kKSide;
      const double sd = static_cast<double>(s);
      const double md = static_cast<double>(m_);
      const double td = static_cast<double>(q_ - s);
      const double kd = static_cast<double>(k_);
      const double est_dense =
          std::min(md * sd * (sd + 1.0), td * kd * (kd + 1.0));
      if (std::min(est_n, est_k) >
          config_.dense_fallback_margin * est_dense) {
        ++stats_.dense_fallbacks;
        return dense_.is_elementary(support);
      }
    }
    ++stats_.sparse_hits;
    return side == RankTestSide::kNSide ? test_n_side(d)
                                        : test_k_side(s, warm);
  }

  /// Move the counters accumulated since the last drain into `iteration`.
  void drain_stats(IterationStats& iteration) {
    iteration.rank_sparse_hits += stats_.sparse_hits;
    iteration.rank_warmstart_reuses += stats_.warmstart_reuses;
    iteration.rank_dense_fallbacks += stats_.dense_fallbacks;
    iteration.rank_gathered_nnz += stats_.gathered_nnz;
    stats_ = RankEngineStats{};
  }

  [[nodiscard]] const RankEngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = RankEngineStats{}; }

 private:
  static constexpr std::uint32_t kNoPivot = UINT32_MAX;

  struct GatherEntry {
    std::uint32_t row;
    std::uint32_t col;
    std::uint64_t value;
  };

  void build_rref(const Matrix<Scalar>& n) {
    std::vector<std::uint64_t> a(m_ * q_);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < q_; ++j) {
        a[i * q_ + j] = modular::from_scalar(n(i, j));
      }
    }
    pivot_row_of_col_.assign(q_, kNoPivot);
    std::size_t rank = 0;
    for (std::size_t col = 0; col < q_ && rank < m_; ++col) {
      std::size_t pr = rank;
      while (pr < m_ && a[pr * q_ + col] == 0) ++pr;
      if (pr == m_) continue;
      if (pr != rank) {
        for (std::size_t j = col; j < q_; ++j) {
          std::swap(a[rank * q_ + j], a[pr * q_ + j]);
        }
      }
      const std::uint64_t inv = modular::invmod(a[rank * q_ + col]);
      for (std::size_t j = col; j < q_; ++j) {
        if (a[rank * q_ + j]) {
          a[rank * q_ + j] = modular::mulmod(a[rank * q_ + j], inv);
        }
      }
      // Full Gauss-Jordan: clearing ABOVE the pivot too makes every pivot
      // column a unit vector, the invariant the N-side fast path rests on.
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == rank) continue;
        const std::uint64_t head = a[i * q_ + col];
        if (head == 0) continue;
        a[i * q_ + col] = 0;
        for (std::size_t j = col + 1; j < q_; ++j) {
          const std::uint64_t sub = modular::mulmod(head, a[rank * q_ + j]);
          if (sub) a[i * q_ + j] = modular::submod(a[i * q_ + j], sub);
        }
      }
      pivot_row_of_col_[col] = static_cast<std::uint32_t>(rank);
      ++rank;
    }
    r_ = rank;
    // Pivot columns are stored empty (their unit entry is implicit); rows
    // at or below r_ are identically zero in an rref and are not stored.
    rref_cols_ = SparseCscU64::build(
        r_, q_, [&](std::size_t i, std::size_t j) -> std::uint64_t {
          if (pivot_row_of_col_[j] != kNoPivot) return 0;
          return a[i * q_ + j];
        });
  }

  /// Reduce a dense k_-length row against the cached echelon block
  /// (read-only: cached pivot rows are normalized and never mutated).
  void reduce_against_cache(std::uint64_t* row) const {
    for (std::size_t b = 0; b < cache_pivot_rows_.size(); ++b) {
      const std::uint64_t factor = row[cache_pivot_cols_[b]];
      if (factor == 0) continue;
      const std::uint64_t* pivot = cache_pivot_rows_[b].data();
      for (std::size_t c = 0; c < k_; ++c) {
        if (pivot[c]) {
          row[c] = modular::submod(row[c], modular::mulmod(factor, pivot[c]));
        }
      }
    }
  }

  /// nullity = d - rank(R[rows not pivoted by S, S's non-pivot columns]):
  /// the |S ∩ pivots| unit columns contribute rank for free, and striking
  /// their pivot rows is the elimination they would have performed.
  bool test_n_side(std::size_t d) {
    if (d == 0) return false;  // all pivot columns: independent, nullity 0
    ++epoch_;
    for (std::uint32_t j : indices_) {
      const std::uint32_t pr = pivot_row_of_col_[j];
      if (pr != kNoPivot) row_kill_stamp_[pr] = epoch_;
    }
    entries_.clear();
    std::size_t active = 0;
    std::uint32_t col_out = 0;
    std::uint64_t gathered = 0;
    for (std::uint32_t j : indices_) {
      if (pivot_row_of_col_[j] != kNoPivot) continue;
      const std::uint32_t* idx = rref_cols_.indices(j);
      const std::uint64_t* val = rref_cols_.values(j);
      const std::size_t nnz = rref_cols_.count(j);
      for (std::size_t e = 0; e < nnz; ++e) {
        const std::uint32_t i = idx[e];
        if (row_kill_stamp_[i] == epoch_) continue;  // struck by a unit pivot
        if (row_slot_stamp_[i] != epoch_) {
          row_slot_stamp_[i] = epoch_;
          row_slot_[i] = static_cast<std::uint32_t>(active++);
        }
        entries_.push_back({row_slot_[i], col_out, val[e]});
        ++gathered;
      }
      ++col_out;
    }
    stats_.gathered_nnz += gathered;
    observe_gathered(gathered);
    if (d > active + 1) return false;  // nullity >= d - active >= 2
    scratch_.assign(active * d, 0);
    for (const GatherEntry& e : entries_) {
      scratch_[e.row * d + e.col] = e.value;
    }
    const auto outcome = residual_rank(scratch_, active, d, 1);
    if (outcome.deficiency_exceeded) return false;
    return d - outcome.rank == 1;
  }

  /// nullity = k - rank(K[~S, :]), assembled as: cached singleton kills +
  /// cached echelon rank + this support's extra singleton kills + rank of
  /// the compacted residual, plus one deficiency per alive column the
  /// residual never touches (an untouched kernel direction).  `warm` is
  /// the cache-validity verdict computed by is_elementary (the cached rows
  /// are all outside the support); warm tests read the pre-reduced
  /// per-iteration store — whose rows already have zeros at every cached
  /// pivot and killed column — so both paths are pure gathers.
  bool test_k_side(std::size_t s, bool warm) {
    if (warm) ++stats_.warmstart_reuses;
    const std::size_t base_killed = warm ? cache_killed_.size() : 0;
    const std::size_t base_rank = warm ? cache_pivot_rows_.size() : 0;
    ++epoch_;
    std::size_t killed = 0;
    rows_pending_.clear();
    std::size_t next = 0;
    for (std::uint32_t r = 0; r < q_; ++r) {
      if (next < s && indices_[next] == r) {
        ++next;
        continue;
      }
      if (warm && cache_row_flag_[r]) continue;  // already in the cache block
      const std::size_t nnz = warm ? iter_count(r) : kernel_rows_.count(r);
      if (nnz == 0) continue;
      if (nnz == 1) {
        const std::uint32_t c = warm ? iter_idx_[iter_start_[r]]
                                     : kernel_rows_.indices(r)[0];
        if (col_kill_stamp_[c] == epoch_) {
          continue;  // column already pivoted: this row is dependent
        }
        col_kill_stamp_[c] = epoch_;
        ++killed;
      } else {
        rows_pending_.push_back(r);
      }
    }
    entries_.clear();
    std::size_t alive = 0;
    std::uint32_t out_row = 0;
    std::uint64_t gathered = 0;
    for (std::uint32_t r : rows_pending_) {
      const std::uint32_t* idx =
          warm ? iter_idx_.data() + iter_start_[r] : kernel_rows_.indices(r);
      const std::uint64_t* val =
          warm ? iter_val_.data() + iter_start_[r] : kernel_rows_.values(r);
      const std::size_t nnz = warm ? iter_count(r) : kernel_rows_.count(r);
      gathered += nnz;
      bool any = false;
      for (std::size_t e = 0; e < nnz; ++e) {
        const std::uint32_t c = idx[e];
        if (col_kill_stamp_[c] == epoch_) {
          continue;  // eliminated by a singleton pivot
        }
        if (col_slot_stamp_[c] != epoch_) {
          col_slot_stamp_[c] = epoch_;
          col_slot_[c] = static_cast<std::uint32_t>(alive++);
        }
        entries_.push_back({out_row, col_slot_[c], val[e]});
        any = true;
      }
      if (any) ++out_row;
    }
    stats_.gathered_nnz += gathered;
    observe_gathered(gathered);
    const std::size_t alive_total = k_ - base_killed - base_rank - killed;
    ELMO_DCHECK(alive <= alive_total,
                "residual wider than the unpivoted column space");
    const std::size_t dropped = alive_total - alive;
    if (dropped >= 2) return false;  // >= 2 untouched kernel directions
    scratch_.assign(static_cast<std::size_t>(out_row) * alive, 0);
    for (const GatherEntry& e : entries_) {
      scratch_[e.row * alive + e.col] = e.value;
    }
    const auto outcome = residual_rank(scratch_, out_row, alive, 1 - dropped);
    if (outcome.deficiency_exceeded) return false;
    return dropped + (alive - outcome.rank) == 1;
  }

  /// rank_mod_p with the per-pivot inversion removed: rows below the pivot
  /// are scaled by the pivot value instead of the pivot row being
  /// normalized (row_i <- pv*row_i - head*row_pivot).  Scaling a row by a
  /// nonzero element of Z_p preserves rank, so the outcome — the only
  /// thing the caller reads — is identical to modular::rank_mod_p's; what
  /// it saves is one ~91-multiply invmod per pivot, which dominates on the
  /// few-row residuals this engine produces.
  static modular::RankOutcome residual_rank(std::vector<std::uint64_t>& a,
                                            std::size_t rows,
                                            std::size_t cols,
                                            std::size_t max_deficiency) {
    std::size_t rank = 0;
    std::size_t deficiency = 0;
    for (std::size_t col = 0; col < cols; ++col) {
      std::size_t pivot_row = rank;
      while (pivot_row < rows && a[pivot_row * cols + col] == 0) ++pivot_row;
      if (pivot_row == rows) {
        if (++deficiency > max_deficiency) return {rank, true};
        continue;
      }
      if (pivot_row != rank) {
        for (std::size_t j = col; j < cols; ++j) {
          std::swap(a[rank * cols + j], a[pivot_row * cols + j]);
        }
      }
      const std::uint64_t pv = a[rank * cols + col];
      for (std::size_t i = rank + 1; i < rows; ++i) {
        const std::uint64_t head = a[i * cols + col];
        if (head == 0) continue;
        a[i * cols + col] = 0;
        for (std::size_t j = col + 1; j < cols; ++j) {
          const std::uint64_t scaled = modular::mulmod(pv, a[i * cols + j]);
          const std::uint64_t sub = modular::mulmod(head, a[rank * cols + j]);
          a[i * cols + j] = modular::submod(scaled, sub);
        }
      }
      if (++rank == rows) {
        deficiency += cols - col - 1;
        return {rank, deficiency > max_deficiency};
      }
    }
    return {rank, false};
  }

  static void observe_gathered(std::uint64_t nnz) {
    if constexpr (obs::kObsCompiledIn) {
      static const obs::Histogram gathered =
          obs::Registry::global().histogram("solver.rank_gathered_nnz");
      gathered.observe(nnz);
    }
  }

  SparseRankConfig config_;
  std::size_t m_;
  std::size_t q_;
  std::size_t k_;
  std::size_t r_ = 0;  // rank_p(N) == number of stored rref rows
  ModularRankTester<Scalar> dense_;
  std::vector<std::uint32_t> pivot_row_of_col_;  // q; kNoPivot if none
  SparseCscU64 rref_cols_;    // rref(N) mod p: r_ x q, pivot cols implicit
  SparseCscU64 kernel_rows_;  // K row store: q major slices of width k_

  /// Width of row r's slice in the per-iteration pre-reduced store.
  [[nodiscard]] std::size_t iter_count(std::uint32_t r) const {
    return iter_start_[r + 1] - iter_start_[r];
  }

  // Iteration warm-start cache (K-side).
  bool cache_active_ = false;
  std::vector<std::uint32_t> cache_rows_;    // sorted common rows
  std::vector<char> cache_row_flag_;         // q: row is in the cache block
  std::vector<std::uint32_t> cache_killed_;  // singleton-pivoted columns
  std::vector<char> col_killed_base_;        // k: killed by the cache
  std::vector<std::uint32_t> cache_pivot_cols_;
  std::vector<std::vector<std::uint64_t>> cache_pivot_rows_;
  // Per-iteration pre-reduced kernel rows (CSR: start/index/value); cache
  // rows and rows dependent on the cached block have empty slices.
  std::vector<std::size_t> iter_start_;  // q + 1
  std::vector<std::uint32_t> iter_idx_;
  std::vector<std::uint64_t> iter_val_;

  // Per-test scratch: epoch stamps avoid O(dimension) clears per test.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> indices_;
  std::vector<std::uint64_t> row_kill_stamp_;  // r_: struck by a unit pivot
  std::vector<std::uint64_t> row_slot_stamp_;  // r_: compaction slot valid
  std::vector<std::uint32_t> row_slot_;
  std::vector<std::uint64_t> col_kill_stamp_;  // k: singleton-killed this test
  std::vector<std::uint64_t> col_slot_stamp_;  // k: compaction slot valid
  std::vector<std::uint32_t> col_slot_;
  std::vector<GatherEntry> entries_;
  std::vector<std::uint64_t> scratch_;
  std::vector<std::uint64_t> temp_;
  std::vector<std::uint32_t> rows_pending_;
  RankEngineStats stats_;
};

/// Rows every candidate of this iteration is zero on: the processed row
/// itself plus every row no pairing column (positive or negative) touches.
/// A candidate is a combination of one positive and one negative column,
/// so its support is contained in the union of their supports minus `row`
/// — the returned rows lie outside it.  Feed to
/// SparseRankTester::begin_iteration.
template <typename Scalar, typename Support>
std::vector<std::uint32_t> iteration_common_zero_rows(
    const std::vector<FluxColumn<Scalar, Support>>& columns,
    const std::vector<std::uint32_t>& positive,
    const std::vector<std::uint32_t>& negative, std::size_t row) {
  std::vector<std::uint32_t> common;
  if (columns.empty()) return common;
  const std::size_t q = columns[0].values.size();
  std::vector<char> touched(q, 0);
  std::vector<std::uint32_t> scratch;
  for (const auto* side : {&positive, &negative}) {
    for (std::uint32_t j : *side) {
      scratch.clear();
      columns[j].support.append_indices(scratch);
      for (std::uint32_t r : scratch) touched[r] = 1;
    }
  }
  for (std::uint32_t r = 0; r < q; ++r) {
    if (!touched[r] || r == row) common.push_back(r);
  }
  return common;
}

}  // namespace elmo
