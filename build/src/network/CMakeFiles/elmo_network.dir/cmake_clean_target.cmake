file(REMOVE_RECURSE
  "libelmo_network.a"
)
