// Live progress and ETA reporting.
//
// A ProgressReporter receives one update per solver iteration (the nullspace
// algorithm's outer loop over rows), estimates throughput in candidate pairs
// per second, and
//   * prints throttled single-line progress to stderr (at most one line per
//     `interval_seconds`), and/or
//   * appends machine-readable JSONL heartbeat records to a file, so an
//     external watcher can track a long solve without parsing human output.
//
// The ETA combines the a-priori pair estimate from core/estimate.hpp (passed
// in as `total_pairs_estimate`) with the observed cumulative pair rate:
//   eta = remaining_pairs / observed_pairs_per_second.
// When no pair estimate is available it falls back to the iteration count,
// which is known exactly (one iteration per constrained row).
//
// Thread-safe: solver callbacks from concurrent ranks may land here.
// Standard library only — this sits below every other module.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

namespace elmo::obs {

class JsonValue;  // obs/json.hpp — only touched in the implementation

struct ProgressOptions {
  /// Print human-readable progress lines to stderr.
  bool print = false;
  /// Minimum seconds between consecutive progress lines / heartbeats.
  double interval_seconds = 0.5;
  /// Append JSONL heartbeat records to this path ("" = off).
  std::string heartbeat_path;
  /// Expected total candidate pairs (from estimate_subset); 0 = unknown.
  std::uint64_t total_pairs_estimate = 0;
  /// Expected total iterations (rows to process); 0 = unknown.
  std::uint64_t total_iterations = 0;
  /// Prefix for progress lines, e.g. the network or subset name.
  std::string label;
  /// Optional gauges polled at every heartbeat (null = field omitted).
  /// std::function keeps obs — the bottom layer — free of a dependency on
  /// the resource module that typically feeds these (governor usage and
  /// out-of-core spill volume).  RSS/peak-RSS need no source; the reporter
  /// reads them from /proc itself.
  std::function<std::uint64_t()> mem_usage_source;
  std::function<std::uint64_t()> spill_bytes_source;
};

/// One progress sample, as reported by the solver after each iteration.
struct ProgressSample {
  std::uint64_t iteration = 0;      // 1-based index of the finished iteration
  std::uint64_t pairs_probed = 0;   // pairs probed in THIS iteration
  std::uint64_t accepted = 0;       // new columns accepted in this iteration
  std::uint64_t columns = 0;        // matrix width after this iteration
};

class ProgressReporter {
 public:
  explicit ProgressReporter(ProgressOptions options);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Record a finished iteration; may emit a progress line / heartbeat if
  /// the throttle interval has elapsed.
  void on_iteration(const ProgressSample& sample);

  /// Record a completed subset (divide-and-conquer partition).  Never
  /// throttled: a subset that finishes faster than `interval_seconds` —
  /// common for the small tail subsets — still leaves a record, so an
  /// external watcher sees every partition land exactly once.
  void on_subset(const std::string& label, std::uint64_t num_efms,
                 double seconds);

  /// Emit the final summary line and heartbeat (idempotent).  If never
  /// called, the destructor emits the terminal record instead, so a solve
  /// that completes inside one heartbeat interval (or aborts between
  /// updates) still closes its heartbeat stream with a `done` record.
  void finish(std::uint64_t num_efms);

  /// Cumulative pairs probed so far (for tests).
  [[nodiscard]] std::uint64_t pairs_so_far() const;

 private:
  /// Emit one line + heartbeat from the current state.  Caller holds mutex_.
  void emit_locked(bool final_line, std::uint64_t num_efms);

  /// Append one JSONL record to the heartbeat file.  Caller holds mutex_.
  void write_heartbeat_locked(const JsonValue& record);

  ProgressOptions options_;
  mutable std::mutex mutex_;
  std::FILE* heartbeat_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_emit_;
  std::uint64_t iterations_seen_ = 0;
  std::uint64_t cumulative_pairs_ = 0;
  std::uint64_t columns_ = 0;
  bool finished_ = false;
};

/// Format a count with a k/M/G suffix ("12.3M"), for progress lines.
std::string format_count(std::uint64_t value);

/// Format seconds as "1.2s" / "3m04s" / "2h11m" for ETA display.
std::string format_duration(double seconds);

}  // namespace elmo::obs
