file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_solver.dir/test_parallel_solver.cpp.o"
  "CMakeFiles/test_parallel_solver.dir/test_parallel_solver.cpp.o.d"
  "test_parallel_solver"
  "test_parallel_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
