#!/usr/bin/env bash
# Static-analysis sweep:
#   1. elmo_lint — the repo's own checker (tools/elmo_lint.cpp): no naked
#      `new`, no rand()/srand(), no swallowing `catch (...)`, every
#      reinterpret_cast annotated.  Runs over src/, tools/, tests/,
#      examples/ and bench/.
#   2. header self-containedness — every src/**/*.hpp must compile on its
#      own (g++ -fsyntax-only), so include order can never hide a missing
#      include.
#   3. clang-tidy — bugprone/concurrency/performance checks from
#      .clang-tidy over the compilation database.  Skipped with a notice
#      when clang-tidy is not installed (the container ships g++ only);
#      stages 1-2 still carry the project-specific rules.
#   4. format check — scripts/format.sh --check (skipped without
#      clang-format).
#
# Usage: scripts/lint.sh [-jN]        exit 0 = clean
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

run() { echo "+ $*" >&2; "$@"; }

echo "== 1/4 elmo_lint (project rules) =="
mkdir -p build-lint
run g++ -std=c++20 -O1 -Wall -Wextra -o build-lint/elmo_lint \
    tools/elmo_lint.cpp
# shellcheck disable=SC2046
run ./build-lint/elmo_lint $(find src tools tests examples bench \
    \( -name '*.cpp' -o -name '*.hpp' \) | sort)

echo "== 2/4 header self-containedness =="
header_fails=0
for header in $(find src -name '*.hpp' | sort); do
  # -include of the header into an empty TU keeps g++ from warning about
  # `#pragma once in main file`.
  if ! g++ -std=c++20 -fsyntax-only -I src -x c++ -include "$header" \
      /dev/null; then
    echo "not self-contained: $header" >&2
    header_fails=$((header_fails + 1))
  fi
done
if [ "$header_fails" -ne 0 ]; then
  echo "lint: $header_fails header(s) do not compile standalone" >&2
  exit 1
fi

echo "== 3/4 clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  run cmake -B build -S . >/dev/null   # refresh compile_commands.json
  # shellcheck disable=SC2046
  run clang-tidy -p build --quiet \
      $(find src -name '*.cpp' | sort)
else
  echo "clang-tidy not installed — skipped (stages 1-2 enforce the" \
       "project-specific rules)" >&2
fi

echo "== 4/4 format check =="
if command -v clang-format >/dev/null 2>&1; then
  run scripts/format.sh --check
else
  echo "clang-format not installed — skipped" >&2
fi

echo "lint OK"
