// Retry policy for divide-and-conquer subsets (Algorithm 3).
//
// Each of the 2^qsub disjoint subsets is an independent, restartable unit
// of work: when one fails transiently (an injected rank crash, a corrupted
// payload) or persistently (memory budget exhausted beyond the adaptive
// re-split depth), the driver re-queues it under this policy instead of
// killing the whole run — the programmatic form of what the paper did by
// hand on Network II (Table IV: subsets 1 and 3 were re-run re-split).
//
// Resource failures climb the same ladder with DEGRADE shaping on top.  A
// subset that died of ResourceError (process --mem-limit bust, or a real
// std::bad_alloc classified in the generation kernel) or DeadlineExceededError
// (watchdog hard deadline / wedged world) is first re-SPLIT if adaptive
// headroom remains — halving the subset is the cheapest way to shrink both
// its footprint and its runtime — and only then retried.  A resource retry
// at attempt k runs with the candidate tile (block_ref_cap) halved k-1
// times, with out-of-core spill enabled, and from the third attempt with
// spill forced on every block; the serial final attempt additionally
// ignores the memory limit and runs unsupervised (completing slowly beats
// not completing).  The shaping lives in solve_combined's attempt setup;
// this struct only carries the knobs shared by all failure classes.
#pragma once

namespace elmo {

struct RetryPolicy {
  /// Total attempts per subset, including the first (1 = fail fast).
  int max_attempts = 1;

  /// Simulated-time backoff: before retry k (k = 1 for the first retry)
  /// the scheduler charges backoff_seconds * 2^(k-1) seconds to the
  /// subset's timing ledger.  Nothing sleeps for real — mpsim time is
  /// simulated — but the cost appears in SubsetSummary::backoff_seconds so
  /// retry storms are visible in the same units as compute time.
  double backoff_seconds = 0.0;

  /// Attempt k runs with max(1, num_ranks >> (k - 1)) ranks: a shrinking
  /// world tolerates the loss of simulated nodes.
  bool halve_ranks_on_retry = false;

  /// The final attempt bypasses the simulated cluster entirely and solves
  /// the subset with serial Algorithm 1 — immune to injected faults and to
  /// the per-rank memory budget (the paper's "just run the survivor
  /// subsets wherever they fit" escape hatch).
  bool serial_final_attempt = false;

  /// API-level rung of the ladder: if the int64 kernel exhausts all subset
  /// retries, rerun the whole computation with BigInt (same path the
  /// overflow fallback takes).  Off by default; useful when transient
  /// triggers may have been consumed by the failed attempts.
  bool bigint_fallback = false;

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }
};

}  // namespace elmo
