file(REMOVE_RECURSE
  "CMakeFiles/test_estimate.dir/test_estimate.cpp.o"
  "CMakeFiles/test_estimate.dir/test_estimate.cpp.o.d"
  "test_estimate"
  "test_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
