// elmo_cli — file-in / file-out elementary-flux-mode computation.
//
//   $ ./examples/elmo_cli network.txt                   # modes to stdout
//   $ ./examples/elmo_cli network.txt -o modes.csv      # CSV to a file
//   $ ./examples/elmo_cli network.txt --algorithm combined --ranks 8 \
//         --partition R6r,R8r --stats
//   $ ./examples/elmo_cli --builtin toy                 # bundled models
//
// The input format is the reaction-list text documented in
// src/network/parser.hpp (and printed by --help).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <optional>

#include "bitset/dynbitset.hpp"
#include "check/audit.hpp"
#include "core/estimate.hpp"
#include "core/subset_select.hpp"
#include "elmo/elmo.hpp"
#include "models/ecoli_core.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "resource/governor.hpp"
#include "resource/shutdown.hpp"
#include "support/format.hpp"

namespace {

constexpr const char* kUsage = R"(usage: elmo_cli [NETWORK_FILE] [options]

input (one of):
  NETWORK_FILE              reaction-list text file
  --builtin toy|yeast1|yeast2|ecoli

options:
  -o, --output FILE         write modes as CSV (default: stdout, text form)
  --algorithm serial|parallel|partitioned|combined   (default serial)
  --ranks N                 simulated compute ranks     (default 4)
  --threads N               shared-memory workers/rank  (default 1)
  --knockout A,B,...        drop the named reactions before solving (the
                            knockout-reduced instances of the hybrid and
                            resource tests; unknown names are errors)
  --partition A,B,...       divide-and-conquer reactions (combined)
  --qsub N                  auto-select N partition reactions (combined)
  --memory-budget BYTES     per-rank memory budget (0 = unlimited)
  --max-extra-splits N      adaptive re-splits on budget errors (combined)
  --retries N               attempts per subset before giving up (combined)
  --retry-serial            make the last attempt serial and unbudgeted
  --checkpoint FILE         append completed subsets to FILE (combined)
  --resume FILE             skip subsets already completed in FILE; also
                            continues appending to FILE unless --checkpoint
                            names a different one
resource governance:
  --mem-limit BYTES         process-wide memory limit enforced by the
                            MemoryGovernor (0 = ungoverned); crossing the
                            half-limit watermark spills candidate blocks
                            out-of-core, busting the limit degrades the run
                            (smaller tiles, spill-always, serial) instead
                            of dying
  --spill-dir DIR           directory for out-of-core candidate blocks
                            (default: the system temp dir); implies spill
                            is enabled
  --spill-always            write every candidate block out-of-core
                            (stress/bit-identity testing)
  --subset-deadline SECS    watchdog hard deadline per subset world
                            (combined); soft straggler diagnosis at half
                            that, wedged-world detection at the full value
  --scale-deadlines         scale each subset's deadline by its estimated
                            cost relative to the median subset
  SIGINT/SIGTERM cancel cooperatively at the next iteration boundary:
  completed subsets stay checkpointed, the report is flushed, and the
  process exits with code 75 (resumable) — rerun with --resume to continue
  losing at most one iteration.  A second signal kills immediately.

  --rank-backend NAME       rank-test backend: sparse (default; amortized
                            sparse-modular with per-candidate dense
                            fallback), modular (dense mod 2^61-1), or
                            exact (Bareiss over exact integers)
  --exact-rank-test         shorthand for --rank-backend exact
  --audit                   re-verify the algorithm's invariants at runtime
                            (S*R = 0 per iteration, exact rank-nullity,
                            support minimality, subset partition coverage,
                            pair conservation) and print the audit tally
  --stats                   print counters and phase times
  --validate                print structural warnings and exit
  --help

observability:
  --trace FILE              write a Chrome/Perfetto trace (trace_event JSON;
                            open at https://ui.perfetto.dev)
  --metrics FILE            write the metrics-registry snapshot as JSON
  --report FILE             write a per-run report.json (stats, per-rank
                            and per-subset breakdowns, growth history)
  --progress                print live progress/ETA lines to stderr
  --heartbeat FILE          append machine-readable JSONL heartbeats
  --ledger FILE             append a schema-versioned run record (JSONL) to
                            FILE; list/diff/regression-check recorded runs
                            with tools/elmo_stat
  (ELMO_TRACE / ELMO_METRICS environment variables preset --trace/--metrics)

reaction-list format:
  # comment
  external GLCext O2ext     # declare external metabolites
  R1  : GLCext + PEP => G6P + PYR
  R2r : G6P <=> F6P         # '<=>' marks reversible reactions
  (names ending in 'ext' are external by default)
)";

[[noreturn]] void usage(int code) {
  std::fputs(kUsage, code == 0 ? stdout : stderr);
  std::exit(code);
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    std::size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    if (comma > start) out.push_back(arg.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elmo;

  std::string input_path;
  std::string builtin;
  std::vector<std::string> knockout_names;
  std::string output_path;
  std::string algorithm = "serial";
  bool print_stats = false;
  bool validate_only = false;
  std::string trace_path;
  std::string metrics_path;
  std::string report_path;
  std::string heartbeat_path;
  std::string ledger_path;
  bool show_progress = false;
  if (const char* env = std::getenv("ELMO_TRACE")) trace_path = env;
  if (const char* env = std::getenv("ELMO_METRICS")) metrics_path = env;
  EfmOptions options;
  options.num_ranks = 4;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    auto next_number = [&](const char* flag) -> unsigned long long {
      std::string value = next();
      errno = 0;
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || value[0] == '-' || *end != '\0' ||
          errno == ERANGE) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got '%s'\n",
                     flag, value.c_str());
        std::exit(2);
      }
      return parsed;
    };
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage(0);
    } else if (!std::strcmp(argv[i], "--builtin")) {
      builtin = next();
    } else if (!std::strcmp(argv[i], "-o") ||
               !std::strcmp(argv[i], "--output")) {
      output_path = next();
    } else if (!std::strcmp(argv[i], "--algorithm")) {
      algorithm = next();
    } else if (!std::strcmp(argv[i], "--ranks")) {
      options.num_ranks = static_cast<int>(next_number("--ranks"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      options.threads_per_rank = static_cast<int>(next_number("--threads"));
    } else if (!std::strcmp(argv[i], "--knockout")) {
      knockout_names = split_csv(next());
    } else if (!std::strcmp(argv[i], "--partition")) {
      options.partition_reactions = split_csv(next());
    } else if (!std::strcmp(argv[i], "--qsub")) {
      options.qsub = static_cast<std::size_t>(next_number("--qsub"));
    } else if (!std::strcmp(argv[i], "--memory-budget")) {
      options.memory_budget_per_rank =
          static_cast<std::size_t>(next_number("--memory-budget"));
    } else if (!std::strcmp(argv[i], "--max-extra-splits")) {
      options.max_extra_splits =
          static_cast<std::size_t>(next_number("--max-extra-splits"));
    } else if (!std::strcmp(argv[i], "--mem-limit")) {
      options.mem_limit_bytes =
          static_cast<std::size_t>(next_number("--mem-limit"));
    } else if (!std::strcmp(argv[i], "--spill-dir")) {
      options.spill.directory = next();
      options.spill.enabled = true;
    } else if (!std::strcmp(argv[i], "--spill-always")) {
      options.spill.enabled = true;
      options.spill.always = true;
    } else if (!std::strcmp(argv[i], "--subset-deadline")) {
      const std::string value = next();
      errno = 0;
      char* end = nullptr;
      const double seconds = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || errno == ERANGE ||
          seconds <= 0.0) {
        std::fprintf(stderr,
                     "error: --subset-deadline expects positive seconds, "
                     "got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
      options.subset_deadlines.hard_seconds = seconds;
      options.subset_deadlines.soft_seconds = seconds / 2.0;
      options.subset_deadlines.stall_seconds = seconds;
    } else if (!std::strcmp(argv[i], "--scale-deadlines")) {
      options.scale_deadlines_by_estimate = true;
    } else if (!std::strcmp(argv[i], "--retries")) {
      options.retry.max_attempts =
          static_cast<int>(next_number("--retries"));
    } else if (!std::strcmp(argv[i], "--retry-serial")) {
      options.retry.serial_final_attempt = true;
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      options.checkpoint_path = next();
    } else if (!std::strcmp(argv[i], "--resume")) {
      options.resume_from = next();
    } else if (!std::strcmp(argv[i], "--rank-backend")) {
      const std::string value = next();
      if (value == "sparse") {
        options.rank_backend = RankTestBackend::kSparse;
      } else if (value == "modular") {
        options.rank_backend = RankTestBackend::kModular;
      } else if (value == "exact") {
        options.rank_backend = RankTestBackend::kExact;
      } else {
        std::fprintf(stderr,
                     "--rank-backend expects sparse|modular|exact, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (!std::strcmp(argv[i], "--exact-rank-test")) {
      options.rank_backend = RankTestBackend::kExact;
    } else if (!std::strcmp(argv[i], "--audit")) {
      options.audit = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = next();
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics_path = next();
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else if (!std::strcmp(argv[i], "--progress")) {
      show_progress = true;
    } else if (!std::strcmp(argv[i], "--heartbeat")) {
      heartbeat_path = next();
    } else if (!std::strcmp(argv[i], "--ledger")) {
      ledger_path = next();
    } else if (!std::strcmp(argv[i], "--stats")) {
      print_stats = true;
    } else if (!std::strcmp(argv[i], "--validate")) {
      validate_only = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage(2);
    } else if (input_path.empty()) {
      input_path = argv[i];
    } else {
      usage(2);
    }
  }
  if (algorithm == "serial") {
    options.algorithm = Algorithm::kSerial;
  } else if (algorithm == "parallel") {
    options.algorithm = Algorithm::kCombinatorialParallel;
  } else if (algorithm == "partitioned") {
    options.algorithm = Algorithm::kPartitioned;
  } else if (algorithm == "combined") {
    options.algorithm = Algorithm::kCombined;
  } else {
    std::fprintf(stderr, "unknown algorithm: %s\n", algorithm.c_str());
    usage(2);
  }

  Network network;
  try {
    if (!builtin.empty()) {
      if (builtin == "toy") {
        network = models::toy_network();
      } else if (builtin == "yeast1") {
        network = models::yeast_network_1();
      } else if (builtin == "yeast2") {
        network = models::yeast_network_2();
      } else if (builtin == "ecoli") {
        network = models::ecoli_core();
      } else {
        std::fprintf(stderr, "unknown builtin: %s\n", builtin.c_str());
        usage(2);
      }
    } else if (!input_path.empty()) {
      std::ifstream in(input_path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      network = parse_network(text.str());
    } else {
      usage(2);
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }

  if (!knockout_names.empty()) {
    std::vector<ReactionId> knockouts;
    for (const auto& name : knockout_names) {
      auto id = network.find_reaction(name);
      if (!id) {
        std::fprintf(stderr, "unknown knockout reaction: %s\n", name.c_str());
        return 2;
      }
      knockouts.push_back(*id);
    }
    network = network.without_reactions(knockouts);
  }

  if (validate_only) {
    auto report = validate(network);
    if (report.clean()) {
      std::printf("network OK: %zu internal metabolites, %zu reactions\n",
                  network.num_internal_metabolites(),
                  network.num_reactions());
      return 0;
    }
    for (const auto& warning : report.warnings)
      std::printf("warning: %s\n", warning.c_str());
    return 3;
  }

  // Knockout runs get their own label so the run ledger never compares a
  // reduced instance against the full network under one workload key.
  std::string label = !builtin.empty() ? builtin : input_path;
  if (!knockout_names.empty())
    label += "-ko" + std::to_string(knockout_names.size());

  // Observability setup.  Tracing installs a process-global recorder;
  // metrics flip the (otherwise free) registry on; the report needs both
  // metrics and the per-iteration history.
  obs::TraceRecorder recorder;
  if (!trace_path.empty()) obs::install_trace(&recorder);
  if (!metrics_path.empty() || !report_path.empty() || !ledger_path.empty())
    obs::Registry::global().set_enabled(true);
  if (!report_path.empty()) options.record_history = true;

  // Crash-safe graceful shutdown: SIGINT/SIGTERM set a flag the solvers
  // poll at iteration boundaries; the CancelledError catch below flushes
  // the report and exits with the resumable code.
  resource::install_signal_handlers();

  try {
    auto compressed = compress(network, options.compression);

    // A-priori cost estimate: a cheap prefix run via the subset estimator,
    // shared by the progress ETA and the report's estimator-vs-actual
    // `flow` accounting.  For Algorithm 3 the whole-problem count would
    // overshoot badly (splitting is the paper's point), so resolve the
    // partition the driver will use and sum the 2^qsub subset estimates.
    double estimated_pairs = 0.0;
    double estimated_efms = 0.0;
    std::uint64_t estimated_iterations = 0;
    if (show_progress || !heartbeat_path.empty() || !report_path.empty() ||
        !ledger_path.empty()) {
      try {
        auto problem = to_problem<CheckedI64>(compressed);
        EstimateOptions eopts;
        eopts.pair_budget = 200'000;
        std::vector<std::size_t> rows;
        if (options.algorithm == Algorithm::kCombined) {
          if (options.partition_reactions.empty()) {
            rows = select_partition_rows(problem, options.ordering,
                                         options.qsub);
          } else {
            for (const auto& name : options.partition_reactions) {
              for (std::size_t j = 0; j < problem.num_reactions(); ++j) {
                if (problem.reaction_names[j] == name) {
                  rows.push_back(j);
                  break;
                }
              }
            }
          }
        }
        if (rows.empty()) {
          const auto estimate = estimate_subset<CheckedI64, DynBitset>(
              problem, SubsetSpec{}, eopts);
          estimated_pairs = estimate.estimated_pairs;
          estimated_efms = estimate.estimated_efms;
        } else {
          for (std::uint64_t id = 0;
               id < (std::uint64_t{1} << rows.size()); ++id) {
            SubsetSpec spec;
            for (std::size_t k = 0; k < rows.size(); ++k)
              spec.pattern.emplace_back(rows[k], (id >> k) & 1);
            const auto estimate = estimate_subset<CheckedI64, DynBitset>(
                problem, spec, eopts);
            estimated_pairs += estimate.estimated_pairs;
            estimated_efms += estimate.estimated_efms;
          }
        }
        // Iteration count: the solver processes one constrained row per
        // iteration (~the reduced rank, = row count after compression);
        // Algorithm 3 runs 2^qsub subsets stopped qsub iterations early.
        const std::size_t m = problem.num_metabolites();
        if (options.algorithm == Algorithm::kCombined && !rows.empty()) {
          estimated_iterations =
              (std::uint64_t{1} << rows.size()) *
              (m > rows.size() ? m - rows.size() : 1);
        } else {
          estimated_iterations = m;
        }
      } catch (const Error&) {
        // Estimation is best effort; progress falls back to pair counts
        // with no completion fraction, and the report's estimate reads 0.
      }
    }

    std::optional<obs::ProgressReporter> progress;
    if (show_progress || !heartbeat_path.empty()) {
      obs::ProgressOptions popts;
      popts.print = show_progress;
      popts.heartbeat_path = heartbeat_path;
      popts.label = label;
      // Resource gauges for the heartbeat records: governor charge and
      // out-of-core spill volume (RSS the reporter reads itself).
      popts.mem_usage_source = [] {
        return static_cast<std::uint64_t>(
            resource::MemoryGovernor::global().usage());
      };
      popts.spill_bytes_source = [] {
        return resource::MemoryGovernor::global().spill_bytes();
      };
      if (estimated_pairs > 0) {
        popts.total_pairs_estimate =
            static_cast<std::uint64_t>(estimated_pairs);
      }
      popts.total_iterations = estimated_iterations;
      progress.emplace(std::move(popts));
      auto user_callback = options.on_iteration;
      auto* reporter = &*progress;
      options.on_iteration = [reporter,
                              user_callback](const IterationStats& it) {
        obs::ProgressSample sample;
        sample.iteration = 0;  // reporter counts iterations itself
        // Parallel ranks report slice-local pairs_probed; positives x
        // negatives is the iteration's GLOBAL pair count on any rank (the
        // matrix is replicated), and equals pairs_probed for Algorithm 1.
        sample.pairs_probed = it.positives * it.negatives;
        sample.accepted = it.accepted;
        sample.columns = it.columns_after;
        reporter->on_iteration(sample);
        if (user_callback) user_callback(it);
      };
      // One unthrottled heartbeat per committed subset (Algorithm 3), so
      // even a subset that finishes inside the throttle interval is seen.
      options.on_subset = [reporter](const std::string& subset_label,
                                     std::size_t num_efms, double seconds) {
        reporter->on_subset(subset_label,
                            static_cast<std::uint64_t>(num_efms), seconds);
      };
    }

    EfmResult result = compute_efms(compressed, network.reversibility(),
                                    options);
    if (progress) progress->finish(result.num_modes());
    if (!trace_path.empty()) {
      obs::install_trace(nullptr);
      recorder.write(trace_path);
      std::fprintf(stderr, "%zu trace events written to %s\n",
                   recorder.event_count(), trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      out << obs::Registry::global().snapshot().to_json().dump(2) << '\n';
      if (!out) {
        throw std::runtime_error("cannot write metrics file: " +
                                 metrics_path);
      }
      std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
    }
    if (!report_path.empty() || !ledger_path.empty()) {
      auto report = make_solve_report(result, options, label);
      if (!trace_path.empty()) {
        // Re-run the flow analysis with the recorded span/flow streams:
        // adds the cross-rank critical path and flow-pairing stats the
        // counter-only pass inside make_solve_report cannot see.
        const auto events = recorder.snapshot_events();
        report.flow = obs::analyze_flow(report, &events);
      }
      report.flow.estimated_pairs = estimated_pairs;
      report.flow.estimated_efms = estimated_efms;
      if (!report_path.empty()) {
        report.write(report_path);
        std::fprintf(stderr, "report written to %s\n", report_path.c_str());
      }
      if (!ledger_path.empty()) {
        obs::append_ledger_record(
            ledger_path, obs::make_ledger_record_env(report.to_json()));
        std::fprintf(stderr, "run recorded in %s\n", ledger_path.c_str());
      }
    }
    if (output_path.empty()) {
      std::fputs(efms_to_text(result.modes, result.reaction_names).c_str(),
                 stdout);
    } else {
      std::ofstream out(output_path);
      out << efms_to_csv(result.modes, result.reaction_names);
      std::fprintf(stderr, "%zu modes written to %s\n", result.num_modes(),
                   output_path.c_str());
    }
    if (options.audit) {
      const auto audit = check::AuditLedger::global().snapshot();
      std::fprintf(stderr,
                   "audit: all invariants passed (%llu checks: "
                   "%llu nullspace products, %llu rank-nullity, "
                   "%llu minimality pairs, %llu partition, "
                   "%llu proposition-1, %llu pair-conservation)\n",
                   static_cast<unsigned long long>(audit.total_checks()),
                   static_cast<unsigned long long>(audit.nullspace_products),
                   static_cast<unsigned long long>(audit.rank_nullity_checks),
                   static_cast<unsigned long long>(audit.minimality_checks),
                   static_cast<unsigned long long>(audit.partition_checks),
                   static_cast<unsigned long long>(audit.proposition1_checks),
                   static_cast<unsigned long long>(
                       audit.pair_conservation_checks));
    }
    if (print_stats) {
      std::fprintf(stderr,
                   "modes: %s  candidate pairs: %s  rank tests: %s\n"
                   "reduced: %zux%zu  time: %s s%s\n",
                   with_commas(result.num_modes()).c_str(),
                   with_commas(result.stats.total_pairs_probed).c_str(),
                   with_commas(result.stats.total_rank_tests).c_str(),
                   result.reduced_metabolites, result.reduced_reactions,
                   seconds_str(result.seconds).c_str(),
                   result.used_bigint ? " (BigInt)" : "");
    }
  } catch (const CancelledError& e) {
    // Cooperative shutdown: everything completed so far is already in the
    // checkpoint file.  Flush the trace/report so the interrupted run is
    // still inspectable, point at --resume, exit resumable (75).
    if (!trace_path.empty()) {
      obs::install_trace(nullptr);
      recorder.write(trace_path);
    }
    if (!report_path.empty()) {
      EfmResult partial;
      auto& governor = resource::MemoryGovernor::global();
      partial.mem_limit_bytes = governor.limit();
      partial.mem_peak_bytes = governor.peak_usage();
      partial.spill_bytes = governor.spill_bytes();
      partial.spill_blocks = governor.spill_blocks();
      auto report = make_solve_report(partial, options, label);
      report.config["cancelled"] = "true";
      report.write(report_path);
      std::fprintf(stderr, "report written to %s\n", report_path.c_str());
    }
    std::fprintf(stderr, "cancelled: %s\n", e.what());
    const std::string resume_hint = !options.checkpoint_path.empty()
                                        ? options.checkpoint_path
                                        : options.resume_from;
    if (!resume_hint.empty()) {
      std::fprintf(stderr, "rerun with --resume %s to continue\n",
                   resume_hint.c_str());
    }
    return resource::kResumableExitCode;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Observability I/O failures (unwritable --trace/--report/--heartbeat
    // paths) surface as std::runtime_error; exit cleanly, not via abort.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
