// Tests for support-set bitsets (Bitset64 and DynBitset share semantics).
#include <gtest/gtest.h>

#include <set>

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "bitset/traits.hpp"
#include "support/random.hpp"

namespace elmo {
namespace {

TEST(Bitset64, SetTestResetCount) {
  Bitset64 s;
  EXPECT_TRUE(s.empty());
  s.set(0);
  s.set(63);
  s.set(17);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(1));
  s.reset(17);
  EXPECT_EQ(s.count(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Bitset64, SubsetAndIntersection) {
  Bitset64 a;
  a.set(1);
  a.set(3);
  Bitset64 b;
  b.set(1);
  b.set(3);
  b.set(5);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  Bitset64 c;
  c.set(7);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(c.is_subset_of(c | a));
}

TEST(Bitset64, UnionPopcountIsTheCandidatePreTest) {
  // The paper's summary rejection: |supp(u) ∪ supp(v)| vs rank+2.
  Bitset64 u;
  u.set(0);
  u.set(1);
  u.set(2);
  Bitset64 v;
  v.set(2);
  v.set(3);
  EXPECT_EQ((u | v).count(), 4u);
}

TEST(Bitset64, OrderingMatchesWordValue) {
  Bitset64 a(0b0110);
  Bitset64 b(0b1001);
  EXPECT_LT(a, b);
  EXPECT_EQ(Bitset64(5), Bitset64(5));
}

TEST(DynBitset, MultiWordBasics) {
  DynBitset s(200);
  EXPECT_GE(s.capacity(), 200u);
  s.set(0);
  s.set(64);
  s.set(128);
  s.set(199);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.test(128));
  EXPECT_FALSE(s.test(127));
  s.reset(64);
  EXPECT_EQ(s.count(), 3u);
}

TEST(DynBitset, SubsetAcrossWords) {
  DynBitset a(130);
  DynBitset b(130);
  a.set(5);
  a.set(100);
  b.set(5);
  b.set(100);
  b.set(129);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a & b).count(), 2u);
}

TEST(DynBitset, OrderingIsMostSignificantWordFirst) {
  DynBitset a(130);
  DynBitset b(130);
  a.set(129);  // high word
  b.set(0);    // low word
  EXPECT_GT(a, b);
}

TEST(BitsetTraits, FactoryRespectsCapacity) {
  auto small = make_support<Bitset64>(40);
  EXPECT_TRUE(small.empty());
  EXPECT_THROW(make_support<Bitset64>(65), InvalidArgumentError);
  auto big = make_support<DynBitset>(500);
  EXPECT_GE(big.capacity(), 500u);
}

// Property: Bitset64 and DynBitset agree on all operations for <=64 bits.
TEST(BitsetProperty, RepresentationsAgree) {
  Rng rng(3);
  for (int iter = 0; iter < 500; ++iter) {
    Bitset64 a64;
    Bitset64 b64;
    DynBitset adyn(64);
    DynBitset bdyn(64);
    for (int k = 0; k < 12; ++k) {
      std::size_t i = rng.below(64);
      std::size_t j = rng.below(64);
      a64.set(i);
      adyn.set(i);
      b64.set(j);
      bdyn.set(j);
    }
    EXPECT_EQ(a64.count(), adyn.count());
    EXPECT_EQ((a64 | b64).count(), (adyn | bdyn).count());
    EXPECT_EQ((a64 & b64).count(), (adyn & bdyn).count());
    EXPECT_EQ(a64.is_subset_of(b64), adyn.is_subset_of(bdyn));
    EXPECT_EQ(a64.intersects(b64), adyn.intersects(bdyn));
    EXPECT_EQ(a64 == b64, adyn == bdyn);
    EXPECT_EQ(a64 < b64, adyn < bdyn);
  }
}

TEST(BitsetProperty, HashDistinguishesDistinctSets) {
  std::set<std::size_t> hashes;
  for (std::uint64_t w = 0; w < 1000; ++w) hashes.insert(Bitset64(w).hash());
  // splitmix64 is injective on 64-bit inputs; no collisions expected here.
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace elmo
