#include "core/api.hpp"

#include "bitset/bitset64.hpp"
#include "bitset/dynbitset.hpp"
#include "core/combined.hpp"
#include "core/partitioned_parallel.hpp"
#include "core/combinatorial_parallel.hpp"
#include "nullspace/efm.hpp"
#include "support/timer.hpp"

namespace elmo {

namespace {

/// Map ORIGINAL partition reaction names to reduced-problem names.
std::vector<std::string> reduced_partition_names(
    const CompressedProblem& compressed,
    const std::vector<std::string>& original_names) {
  std::vector<std::string> reduced;
  reduced.reserve(original_names.size());
  for (const auto& name : original_names) {
    auto column = compressed.column_for(name);
    ELMO_REQUIRE(column.has_value(),
                 "partition reaction " + name +
                     " was removed by compression (forced zero flux)");
    reduced.push_back(compressed.reaction_names[*column]);
  }
  return reduced;
}

template <typename Scalar, typename Support>
EfmResult run_with(const CompressedProblem& compressed,
                   const std::vector<bool>& original_reversibility,
                   const EfmOptions& options) {
  EfmResult result;
  Stopwatch watch;
  auto problem = to_problem<Scalar>(compressed);

  SolverOptions solver;
  solver.ordering = options.ordering;
  solver.test = options.test;
  solver.rank_backend = options.rank_backend;
  solver.on_iteration = options.on_iteration;

  std::vector<FluxColumn<Scalar, Support>> columns;
  switch (options.algorithm) {
    case Algorithm::kSerial: {
      auto solved = solve_efms<Scalar, Support>(problem, solver);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.stats);
      break;
    }
    case Algorithm::kCombinatorialParallel: {
      ParallelOptions parallel;
      parallel.num_ranks = options.num_ranks;
      parallel.threads_per_rank = options.threads_per_rank;
      parallel.solver = solver;
      parallel.memory_budget_per_rank = options.memory_budget_per_rank;
      parallel.fault_plan = options.fault_plan;
      auto solved =
          solve_combinatorial_parallel<Scalar, Support>(problem, parallel);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.stats);
      result.message_bytes = solved.ranks.total_bytes_sent();
      result.peak_rank_memory = solved.ranks.max_memory_peak();
      break;
    }
    case Algorithm::kPartitioned: {
      PartitionedOptions partitioned;
      partitioned.num_ranks = options.num_ranks;
      partitioned.solver = solver;
      partitioned.memory_budget_per_rank = options.memory_budget_per_rank;
      partitioned.fault_plan = options.fault_plan;
      auto solved =
          solve_partitioned_parallel<Scalar, Support>(problem, partitioned);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.stats);
      result.message_bytes = solved.ranks.total_bytes_sent();
      result.peak_rank_memory = solved.peak_rank_bytes;
      break;
    }
    case Algorithm::kCombined: {
      CombinedOptions combined;
      if (!options.partition_reactions.empty()) {
        combined.partition_reactions =
            reduced_partition_names(compressed, options.partition_reactions);
      }
      combined.qsub = options.qsub;
      combined.num_ranks = options.num_ranks;
      combined.threads_per_rank = options.threads_per_rank;
      combined.solver = solver;
      combined.memory_budget_per_rank = options.memory_budget_per_rank;
      combined.max_extra_splits = options.max_extra_splits;
      combined.retry = options.retry;
      combined.fault_plan = options.fault_plan;
      combined.checkpoint_path = options.checkpoint_path;
      combined.resume_from = options.resume_from;
      auto solved = solve_combined<Scalar, Support>(problem, combined);
      columns = std::move(solved.columns);
      result.stats = std::move(solved.total);
      result.total_retries = solved.total_retries;
      result.simulated_backoff_seconds = solved.simulated_backoff_seconds;
      for (const auto& subset : solved.subsets) {
        SubsetSummary summary;
        summary.label = subset.label;
        summary.num_efms = subset.num_efms;
        summary.candidate_pairs = subset.stats.total_pairs_probed;
        summary.seconds = subset.seconds;
        summary.gen_cand_seconds = subset.stats.phases.seconds("gen cand");
        summary.rank_test_seconds = subset.stats.phases.seconds("rank test");
        summary.communicate_seconds =
            subset.stats.phases.seconds("communicate");
        summary.merge_seconds = subset.stats.phases.seconds("merge");
        summary.extra_splits = subset.extra_splits;
        summary.attempts = subset.attempts;
        summary.backoff_seconds = subset.backoff_seconds;
        summary.resumed = subset.resumed;
        result.subsets.push_back(std::move(summary));
        result.message_bytes += subset.ranks.total_bytes_sent();
        result.peak_rank_memory =
            std::max(result.peak_rank_memory, subset.ranks.max_memory_peak());
      }
      break;
    }
  }

  auto reduced_modes = columns_to_bigint(columns);
  result.modes.reserve(reduced_modes.size());
  for (const auto& mode : reduced_modes)
    result.modes.push_back(compressed.expand(mode));
  canonicalize_modes(result.modes, original_reversibility);

  result.reaction_names = compressed.original_reaction_names;
  result.compression_stats = compressed.stats;
  result.reduced_reactions = compressed.num_reactions();
  result.reduced_metabolites = compressed.num_metabolites();
  result.seconds = watch.seconds();
  result.used_bigint = std::is_same_v<Scalar, BigInt>;
  return result;
}

template <typename Scalar>
EfmResult run_with_support(const CompressedProblem& compressed,
                           const std::vector<bool>& original_reversibility,
                           const EfmOptions& options) {
  // The prepared (split) problem can gain one column per reversible
  // reaction in the worst case; size the support type for that bound so a
  // mid-run split never overflows the single-word representation.
  const std::size_t worst_case =
      compressed.num_reactions() +
      static_cast<std::size_t>(std::count(compressed.reversible.begin(),
                                          compressed.reversible.end(), true));
  if (worst_case <= Bitset64::capacity()) {
    return run_with<Scalar, Bitset64>(compressed, original_reversibility,
                                      options);
  }
  return run_with<Scalar, DynBitset>(compressed, original_reversibility,
                                     options);
}

}  // namespace

EfmResult compute_efms(const CompressedProblem& compressed,
                       const std::vector<bool>& original_reversibility,
                       const EfmOptions& options) {
  if (options.force_bigint) {
    return run_with_support<BigInt>(compressed, original_reversibility,
                                    options);
  }
  try {
    return run_with_support<CheckedI64>(compressed, original_reversibility,
                                        options);
  } catch (const OverflowError&) {
    // Values outgrew 64 bits mid-computation: redo exactly.
    auto result = run_with_support<BigInt>(compressed,
                                           original_reversibility, options);
    result.stats.bigint_fallback = true;
    return result;
  } catch (const RetryExhaustedError&) {
    if (!options.retry.bigint_fallback) throw;
    // The retry ladder's last rung: rerun the whole computation in BigInt.
    // A shared FaultPlan keeps its cumulative trigger state, so one-shot
    // faults that doomed the int64 attempts do not refire here.
    auto result = run_with_support<BigInt>(compressed,
                                           original_reversibility, options);
    result.stats.bigint_fallback = true;
    return result;
  }
}

EfmResult compute_efms(const Network& network, const EfmOptions& options) {
  auto compressed = compress(network, options.compression);
  return compute_efms(compressed, network.reversibility(), options);
}

}  // namespace elmo
