# Empty dependencies file for yeast_efm.
# This may be replaced when dependencies are built.
