// Lock-order and deadlock-potential checker.
//
// Deadlocks need four conditions; the one a codebase controls is circular
// wait.  This checker records the process-wide lock ACQUISITION GRAPH —
// a directed edge A -> B each time a thread acquires lock B while holding
// lock A — and fails deterministically the moment an acquisition would
// close a cycle, i.e. on the FIRST run that exhibits an inconsistent lock
// order, whether or not the interleaving that actually deadlocks ever
// happens.  This is the classic lockdep idea and catches what TSan only
// finds when the bad interleaving occurs under instrumentation.
//
// Locks are identified by name (a string literal); instrumented sites wrap
// their guard in ScopedLockOrder.  The mpsim world mutex and the ThreadPool
// queue mutex are instrumented in debug/audit builds via ELMO_LOCK_ORDER
// (zero overhead in release builds; the checker itself stays available for
// tests and tools in every build).
//
// A cycle report throws ContractViolation naming the full cycle, e.g.
//   lock-order cycle: world.mutex -> pool.mutex -> world.mutex
#pragma once

#include <string>
#include <vector>

#include "check/contracts.hpp"

namespace elmo::check {

/// Process-global acquisition-graph recorder.  Thread-safe; the per-thread
/// held-lock stack is thread_local.
class LockOrderGraph {
 public:
  static LockOrderGraph& global();

  /// Record that the current thread is acquiring `name`.  Adds edges from
  /// every lock the thread already holds; throws ContractViolation if an
  /// edge closes a cycle.  Call BEFORE blocking on the real mutex so the
  /// report fires even when the cycle would deadlock.
  void on_acquire(const char* name);

  /// Record that the current thread released `name` (innermost-first is
  /// expected but not required).
  void on_release(const char* name);

  /// Edges recorded so far, as "from -> to" strings (diagnostics/tests).
  [[nodiscard]] std::vector<std::string> edges() const;

  /// Drop all recorded edges (tests isolate themselves with this).
  void reset();

 private:
  struct Impl;
  LockOrderGraph();
  Impl* impl_;
};

/// RAII acquisition record around a scoped lock.  Construct immediately
/// BEFORE taking the mutex:
///
///   check::ScopedLockOrder order("world.mutex");
///   std::unique_lock lock(mutex_);
class ScopedLockOrder {
 public:
  explicit ScopedLockOrder(const char* name) : name_(name) {
    LockOrderGraph::global().on_acquire(name_);
  }
  ~ScopedLockOrder() { LockOrderGraph::global().on_release(name_); }

  ScopedLockOrder(const ScopedLockOrder&) = delete;
  ScopedLockOrder& operator=(const ScopedLockOrder&) = delete;

 private:
  const char* name_;
};

}  // namespace elmo::check

// Instrumentation macro: active in debug/audit builds, free in release.
#if ELMO_CONTRACTS_ENABLED
#define ELMO_LOCK_ORDER_CAT2(a, b) a##b
#define ELMO_LOCK_ORDER_CAT(a, b) ELMO_LOCK_ORDER_CAT2(a, b)
#define ELMO_LOCK_ORDER(name)            \
  ::elmo::check::ScopedLockOrder ELMO_LOCK_ORDER_CAT( \
      elmo_lock_order_guard_, __LINE__)(name)
#else
#define ELMO_LOCK_ORDER(name) \
  do {                        \
  } while (false)
#endif
