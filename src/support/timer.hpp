// Wall-clock timing utilities.
//
// Stopwatch    - simple start/elapsed timer.
// PhaseTimer   - accumulates named phase durations; used to reproduce the
//                paper's per-phase breakdown (gen cand / rank test /
//                communicate / merge) in Tables II and III.
// ScopedPhase  - RAII adapter adding a scope's duration to one phase.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace elmo {

/// Monotonic wall-clock stopwatch measuring seconds as double.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall-clock time into named phases.
class PhaseTimer {
 public:
  /// Add `seconds` to phase `name` (creates the phase on first use).
  void add(const std::string& name, double seconds) {
    totals_[name] += seconds;
  }

  /// Total accumulated seconds for `name`; 0 if the phase never ran.
  [[nodiscard]] double seconds(const std::string& name) const {
    auto it = totals_.find(name);
    return it == totals_.end() ? 0.0 : it->second;
  }

  /// Merge another timer's totals into this one (phase-wise sum).
  void merge(const PhaseTimer& other) {
    for (const auto& [name, secs] : other.totals_) totals_[name] += secs;
  }

  /// Phase-wise maximum; used to aggregate per-rank timings the way the
  /// paper reports them (slowest rank bounds the iteration).
  void merge_max(const PhaseTimer& other) {
    for (const auto& [name, secs] : other.totals_) {
      auto [it, inserted] = totals_.emplace(name, secs);
      if (!inserted && secs > it->second) it->second = secs;
    }
  }

  [[nodiscard]] const std::map<std::string, double>& totals() const {
    return totals_;
  }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

/// RAII helper: adds the lifetime of the object to `timer[phase]`.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() { timer_.add(phase_, watch_.seconds()); }

 private:
  PhaseTimer& timer_;
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace elmo
