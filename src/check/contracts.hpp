// Contract macros for debug/audit builds.
//
// Three levels, complementing the always-on macros in support/assert.hpp:
//
//   ELMO_REQUIRE    (support/assert.hpp) - precondition, always on, throws.
//   ELMO_CHECK      (support/assert.hpp) - internal check, always on, throws.
//   ELMO_ENSURE     (here) - postcondition; compiled out in release builds.
//   ELMO_INVARIANT  (here) - algebraic/structural invariant; compiled out
//                            in release builds.
//
// ELMO_ENSURE/ELMO_INVARIANT are active when the build defines ELMO_AUDIT
// (cmake -DELMO_AUDIT=ON) or is a debug build (!NDEBUG); otherwise they
// compile to nothing and their arguments are not evaluated.  On failure the
// full context — expression, file:line, contract level, message — is
// written to stderr and the installed failure handler runs.  The default
// handler throws ContractViolation so library users and tests can observe
// the failure; set_contract_abort(true) (or ELMO_CONTRACT_ABORT=1 in the
// environment) switches to abort-with-context for debugging with a core
// dump.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "support/error.hpp"

#if defined(ELMO_AUDIT) || !defined(NDEBUG)
#define ELMO_CONTRACTS_ENABLED 1
#else
#define ELMO_CONTRACTS_ENABLED 0
#endif

namespace elmo {

/// A postcondition or invariant contract failed; indicates a bug in elmo
/// (or deliberately corrupted state under test).
class ContractViolation : public InternalError {
 public:
  explicit ContractViolation(const std::string& what) : InternalError(what) {}
};

namespace check {

namespace detail {
inline std::atomic<bool>& abort_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("ELMO_CONTRACT_ABORT");
    return env != nullptr && std::strcmp(env, "0") != 0;
  }()};
  return flag;
}
}  // namespace detail

/// When true, contract failures abort after printing context instead of
/// throwing ContractViolation.  Also settable via ELMO_CONTRACT_ABORT=1.
inline void set_contract_abort(bool abort_on_failure) {
  detail::abort_flag().store(abort_on_failure, std::memory_order_relaxed);
}

[[noreturn]] inline void contract_failed(const char* level, const char* expr,
                                         const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << level << " violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << ": " << msg;
  const std::string text = os.str();
  std::fprintf(stderr, "elmo: %s\n", text.c_str());
  if (detail::abort_flag().load(std::memory_order_relaxed)) std::abort();
  throw ContractViolation(text);
}

}  // namespace check
}  // namespace elmo

#if ELMO_CONTRACTS_ENABLED

#define ELMO_ENSURE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::elmo::check::contract_failed("postcondition", #expr, __FILE__,  \
                                     __LINE__, msg);                    \
  } while (false)

#define ELMO_INVARIANT(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::elmo::check::contract_failed("invariant", #expr, __FILE__,    \
                                     __LINE__, msg);                  \
  } while (false)

#else

#define ELMO_ENSURE(expr, msg) \
  do {                         \
  } while (false)

#define ELMO_INVARIANT(expr, msg) \
  do {                            \
  } while (false)

#endif
