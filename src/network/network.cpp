#include "network/network.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace elmo {

std::int64_t Reaction::coefficient_of(MetaboliteId met) const {
  for (const auto& term : terms)
    if (term.metabolite == met) return term.coefficient;
  return 0;
}

MetaboliteId Network::add_metabolite(std::string name, bool external) {
  ELMO_REQUIRE(!name.empty(), "metabolite name must not be empty");
  ELMO_REQUIRE(!metabolite_index_.contains(name),
               "duplicate metabolite name: " + name);
  MetaboliteId id = metabolites_.size();
  metabolite_index_.emplace(name, id);
  metabolites_.push_back(Metabolite{std::move(name), external});
  if (!external) ++internal_count_;
  return id;
}

ReactionId Network::add_reaction(
    std::string name, bool reversible,
    const std::vector<std::pair<std::string, std::int64_t>>& terms) {
  ELMO_REQUIRE(!name.empty(), "reaction name must not be empty");
  ELMO_REQUIRE(!reaction_index_.contains(name),
               "duplicate reaction name: " + name);

  // Sum coefficients per metabolite (a metabolite may appear on both sides).
  std::map<MetaboliteId, std::int64_t> net;
  for (const auto& [met_name, coeff] : terms) {
    auto it = metabolite_index_.find(met_name);
    ELMO_REQUIRE(it != metabolite_index_.end(),
                 "reaction " + name + " references unknown metabolite '" +
                     met_name + "'");
    net[it->second] += coeff;
  }

  Reaction reaction;
  reaction.name = name;
  reaction.reversible = reversible;
  for (const auto& [met, coeff] : net) {
    if (coeff != 0) reaction.terms.push_back(StoichTerm{met, coeff});
  }

  ReactionId id = reactions_.size();
  reaction_index_.emplace(std::move(name), id);
  reactions_.push_back(std::move(reaction));
  return id;
}

std::size_t Network::num_reversible_reactions() const {
  return static_cast<std::size_t>(
      std::count_if(reactions_.begin(), reactions_.end(),
                    [](const Reaction& r) { return r.reversible; }));
}

std::optional<MetaboliteId> Network::find_metabolite(
    const std::string& name) const {
  auto it = metabolite_index_.find(name);
  if (it == metabolite_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<ReactionId> Network::find_reaction(
    const std::string& name) const {
  auto it = reaction_index_.find(name);
  if (it == reaction_index_.end()) return std::nullopt;
  return it->second;
}

ReactionId Network::reaction_id(const std::string& name) const {
  auto id = find_reaction(name);
  ELMO_REQUIRE(id.has_value(), "unknown reaction: " + name);
  return *id;
}

std::vector<MetaboliteId> Network::internal_metabolites() const {
  std::vector<MetaboliteId> result;
  result.reserve(internal_count_);
  for (MetaboliteId id = 0; id < metabolites_.size(); ++id)
    if (!metabolites_[id].external) result.push_back(id);
  return result;
}

Network Network::without_reactions(
    const std::vector<ReactionId>& removed) const {
  std::vector<bool> drop(reactions_.size(), false);
  for (ReactionId id : removed) {
    ELMO_REQUIRE(id < reactions_.size(), "knockout: bad reaction id");
    drop[id] = true;
  }
  Network out;
  for (const auto& met : metabolites_)
    out.add_metabolite(met.name, met.external);
  for (ReactionId id = 0; id < reactions_.size(); ++id) {
    if (drop[id]) continue;
    const Reaction& r = reactions_[id];
    std::vector<std::pair<std::string, std::int64_t>> terms;
    terms.reserve(r.terms.size());
    for (const auto& term : r.terms)
      terms.emplace_back(metabolites_[term.metabolite].name,
                         term.coefficient);
    out.add_reaction(r.name, r.reversible, terms);
  }
  return out;
}

std::vector<bool> Network::reversibility() const {
  std::vector<bool> flags(reactions_.size());
  for (std::size_t j = 0; j < reactions_.size(); ++j)
    flags[j] = reactions_[j].reversible;
  return flags;
}

}  // namespace elmo
