// Seeded random metabolic-network generator.
//
// Produces structurally plausible networks (a chain backbone guaranteeing
// connectivity, plus random branch/exchange reactions) for property tests
// and scaling benches.  Generation is deterministic per seed so failures
// reproduce exactly.
#pragma once

#include <cstdint>

#include "network/network.hpp"

namespace elmo::models {

struct RandomNetworkSpec {
  std::size_t num_metabolites = 6;
  /// Internal (non-exchange) reactions beyond the backbone chain.
  std::size_t num_extra_reactions = 4;
  /// Exchange reactions (import/export of a random metabolite).
  std::size_t num_exchanges = 3;
  /// Probability that a generated reaction is reversible.
  double reversible_probability = 0.3;
  /// Maximum stoichiometric coefficient magnitude.
  std::int64_t max_coefficient = 2;
  std::uint64_t seed = 1;
};

/// Generate a random network per `spec`.
Network random_network(const RandomNetworkSpec& spec);

}  // namespace elmo::models
