# Empty compiler generated dependencies file for elmo_io.
# This may be replaced when dependencies are built.
