// Pass 3 — overflow boundary.
//
// The Nullspace Algorithm's rank test is only meaningful under EXACT
// arithmetic: a silently wrapped int64 multiply produces a wrong rank and
// a wrong (not just slow) answer, which is why all kernel arithmetic goes
// through bigint/checked.hpp (CheckedI64 operators, or the checked_add/
// checked_mul/checked_shl free helpers for raw std::int64_t).  This pass
// flags raw `*`, `+` and `<<` where an operand is statically known to be
// int64-typed, inside the exact-arithmetic modules src/nullspace,
// src/linalg and src/core.
//
// Type knowledge is heuristic and local to each file: declarations
// (variables, parameters, data members) of std::int64_t, functions
// declared to return std::int64_t, static_cast<std::int64_t>(...),
// std::vector<std::int64_t>/std::array<std::int64_t,...> elements, and
// CheckedI64::value() results.  `<<` is only flagged when the LEFT operand
// is int64-typed (stream insertion constantly puts integers on the
// right).  Intentionally-unchecked sites (counters that provably cannot
// wrap) carry lint:allow(overflow) with a justification.
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/lexer.hpp"

namespace elmo_analyze {

namespace {

bool in_target_module(const SourceFile& f) {
  return f.module == "nullspace" || f.module == "linalg" || f.module == "core";
}

/// Tokens `[std ::] int64_t` ending at index `i` (i.e. toks[i] ==
/// "int64_t").
bool is_i64_type_at(const std::vector<Token>& toks, std::size_t i) {
  return toks[i].ident() && toks[i].text == "int64_t";
}

struct TypeIndex {
  std::set<std::string> vars;  // int64-typed variables/members/params
  std::set<std::string> fns;   // functions returning int64
};

TypeIndex build_type_index(const std::vector<Token>& toks) {
  TypeIndex idx;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_i64_type_at(toks, i)) continue;
    // `int64_t NAME` — variable, parameter, member or function.
    if (i + 1 < toks.size() && toks[i + 1].ident()) {
      const std::string& name = toks[i + 1].text;
      if (i + 2 < toks.size() && toks[i + 2].is("(")) {
        idx.fns.insert(name);
      } else {
        idx.vars.insert(name);
      }
      continue;
    }
    // `vector<int64_t> NAME` / `array<int64_t, N> NAME`: elements of NAME
    // are int64; indexing is handled by treating NAME as int64-valued
    // through subscripts.
    if (i + 1 < toks.size() && toks[i + 1].is(">") && i + 2 < toks.size() &&
        toks[i + 2].ident()) {
      idx.vars.insert(toks[i + 2].text);
      continue;
    }
    if (i + 1 < toks.size() && toks[i + 1].is(",")) {
      // array<int64_t, N> NAME
      std::size_t j = i + 1;
      while (j < toks.size() && !toks[j].is(">") && !toks[j].is(";")) ++j;
      if (j + 1 < toks.size() && toks[j].is(">") && toks[j + 1].ident()) {
        idx.vars.insert(toks[j + 1].text);
      }
    }
  }
  // `auto NAME = <expr involving .value()>` — CheckedI64 extraction.
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].ident() && toks[i].text == "auto" && toks[i + 1].ident() &&
        toks[i + 2].is("=")) {
      for (std::size_t j = i + 3; j < toks.size() && !toks[j].is(";"); ++j) {
        if (toks[j].ident() && toks[j].text == "value" && j > 0 &&
            (toks[j - 1].is(".") || toks[j - 1].is("->"))) {
          idx.vars.insert(toks[i + 1].text);
          break;
        }
      }
    }
  }
  return idx;
}

/// Does the `)` at `close` end an int64-producing expression?  Handles
/// x.value(), int64-returning calls, static_cast<std::int64_t>(...), and
/// grouping parens containing an int64 variable.
bool close_paren_is_i64(const std::vector<Token>& toks, std::size_t close,
                        const TypeIndex& idx) {
  const std::size_t open = match_backward(toks, close);
  if (open == std::string::npos) return false;
  if (open == 0) return false;
  const Token& before = toks[open - 1];
  if (before.ident()) {
    if (before.text == "value" && open >= 2 &&
        (toks[open - 2].is(".") || toks[open - 2].is("->"))) {
      return true;
    }
    return idx.fns.count(before.text) != 0;
  }
  if (before.is(">")) {
    // `static_cast < std :: int64_t > ( ... )` or int64_t{...}-style
    // functional casts through templates.
    for (std::size_t j = open - 1; j-- > 0 && j + 8 > open;) {
      if (toks[j].is("<")) {
        for (std::size_t k = j + 1; k < open - 1; ++k) {
          if (is_i64_type_at(toks, k)) return true;
        }
        return false;
      }
    }
    return false;
  }
  // Grouping parens: int64 if any contained identifier is an int64 var.
  for (std::size_t k = open + 1; k < close; ++k) {
    if (toks[k].ident() && idx.vars.count(toks[k].text) != 0) return true;
  }
  return false;
}

/// Does the `]` at `close` end an int64 element access?
bool close_bracket_is_i64(const std::vector<Token>& toks, std::size_t close,
                          const TypeIndex& idx) {
  const std::size_t open = match_backward(toks, close);
  if (open == std::string::npos || open == 0) return false;
  return toks[open - 1].ident() && idx.vars.count(toks[open - 1].text) != 0;
}

/// Int64-typedness of the operand ENDING at token index `i` (for the left
/// side of a binary operator at i+1).
bool left_operand_is_i64(const std::vector<Token>& toks, std::size_t i,
                         const TypeIndex& idx) {
  const Token& t = toks[i];
  if (t.ident()) return idx.vars.count(t.text) != 0;
  if (t.is(")")) return close_paren_is_i64(toks, i, idx);
  if (t.is("]")) return close_bracket_is_i64(toks, i, idx);
  return false;
}

/// Int64-typedness of the operand STARTING at token index `i` (for the
/// right side of a binary operator at i-1).  Looks through member access
/// chains (a.b, a->b) and calls.
bool right_operand_is_i64(const std::vector<Token>& toks, std::size_t i,
                          const TypeIndex& idx) {
  // Skip unary prefixes.
  while (i < toks.size() &&
         (toks[i].is("-") || toks[i].is("+") || toks[i].is("~"))) {
    ++i;
  }
  if (i >= toks.size()) return false;
  const Token& t = toks[i];
  if (t.ident()) {
    // `x` or `x.value()` where x is anything and value() marks CheckedI64
    // extraction; or a call to an int64-returning function.
    if (idx.vars.count(t.text) != 0) {
      // Direct variable — but `x.foo` means the OUTER expression decides;
      // only accept when not a call on a non-int64 base... keep simple:
      // the variable itself is int64-typed.
      return true;
    }
    if (idx.fns.count(t.text) != 0 && i + 1 < toks.size() &&
        toks[i + 1].is("(")) {
      return true;
    }
    // Member-access chain ending in value().
    std::size_t j = i;
    while (j + 2 < toks.size() &&
           (toks[j + 1].is(".") || toks[j + 1].is("->")) &&
           toks[j + 2].ident()) {
      j += 2;
    }
    if (j != i && toks[j].text == "value" && j + 1 < toks.size() &&
        toks[j + 1].is("(")) {
      return true;
    }
    return false;
  }
  if (t.is("(")) {
    const std::size_t close = match_forward(toks, i);
    if (close == std::string::npos) return false;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (toks[k].ident() && idx.vars.count(toks[k].text) != 0) return true;
    }
    return false;
  }
  if (t.ident() || t.kind == Token::Kind::kNumber) return false;
  // static_cast < ... int64_t ... > ( ... )
  if (t.is("static_cast")) return false;  // handled via ident path? no:
  return false;
}

bool prev_means_binary(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const Token& p = toks[i - 1];
  return p.ident() || p.kind == Token::Kind::kNumber || p.is(")") ||
         p.is("]");
}

}  // namespace

void pass_overflow(const Project& project, const Options& opts,
                   std::vector<Finding>& findings) {
  (void)opts;
  for (const SourceFile& f : project.files) {
    // Scanned trees: only the exact-arithmetic modules under src/.
    // Explicit file arguments (fixtures, ad-hoc runs) are always analyzed.
    if (!f.tree.empty() && (f.tree != "src" || !in_target_module(f))) {
      continue;
    }
    const std::vector<Token> toks = lex(f.stripped);
    const TypeIndex idx = build_type_index(toks);
    if (idx.vars.empty() && idx.fns.empty()) continue;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      const bool is_mul = t.is("*");
      const bool is_add = t.is("+");
      const bool is_shl = t.is("<<");
      if (!is_mul && !is_add && !is_shl) continue;
      if (!prev_means_binary(toks, i)) continue;  // unary +/- or deref
      // `*` followed by ident then `(`/`)`/`,`/`;` could be a pointer
      // declarator — `int64_t* p` never reaches here because prev is the
      // type name... it IS an ident.  Exclude declarator shapes: `T * name
      // =`, `T * name ;`, `T * name ,`, `T * name )`.
      if (is_mul && toks[i - 1].ident() && toks[i + 1].ident() &&
          i + 2 < toks.size() &&
          (toks[i + 2].is("=") || toks[i + 2].is(";") || toks[i + 2].is(",") ||
           toks[i + 2].is(")"))) {
        // Only skip when the left token looks like a TYPE (not a known
        // int64 variable).
        if (idx.vars.count(toks[i - 1].text) == 0) continue;
      }
      const bool left = left_operand_is_i64(toks, i - 1, idx);
      const bool right = right_operand_is_i64(toks, i + 1, idx);
      const bool flagged = is_shl ? left : (left || right);
      if (!flagged) continue;
      if (f.allows(t.line, "overflow")) continue;
      const char* op = is_mul ? "*" : (is_add ? "+" : "<<");
      const char* helper =
          is_mul ? "elmo::checked_mul" : (is_add ? "elmo::checked_add"
                                                 : "elmo::checked_shl");
      findings.push_back(
          {"overflow", "unchecked-arith", f.path, t.line,
           std::string("raw `") + op +
               "` on int64_t-typed operand(s) bypasses bigint/checked.hpp; "
               "use " + helper +
               " (throws OverflowError instead of wrapping) or annotate "
               "lint:allow(overflow) with a justification",
           false});
    }
  }
}

}  // namespace elmo_analyze
