// Ablation: divide-and-conquer partition choice (SIV.C) and the automated
// selection estimator (the paper's future-work item, implemented in
// core/estimate.hpp).
//
// For every subset of the four trailing reversible reactions (size 1..3),
// prints the sampling estimator's predicted cumulative candidate count next
// to the measured one, and reports the pairwise ranking agreement — the
// quantity that decides whether automated selection would have picked a
// good partition.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "bitset/dynbitset.hpp"
#include "core/estimate.hpp"
#include "nullspace/efm.hpp"
#include "nullspace/problem.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(full,
                            "Ablation: partition-subset selection + cost "
                            "estimator");

  Network network = bench::network_1(full);
  auto compressed = compress(network);
  auto problem = to_problem<CheckedI64>(compressed);

  std::vector<std::size_t> pool =
      select_partition_rows(problem, OrderingOptions{}, 4);
  std::printf("candidate pool (trailing reversibles):");
  for (auto row : pool)
    std::printf(" %s", problem.reaction_names[row].c_str());
  std::printf("\n\n");

  struct Entry {
    std::string label;
    double estimated = 0;
    std::uint64_t measured = 0;
    double seconds = 0;
  };
  std::vector<Entry> entries;

  Table table({"partition", "estimated pairs", "measured pairs", "time (s)",
               "# EFM"});
  for (std::uint64_t mask = 1; mask < (1ULL << pool.size()); ++mask) {
    std::vector<std::size_t> rows;
    for (std::size_t k = 0; k < pool.size(); ++k)
      if ((mask >> k) & 1) rows.push_back(pool[k]);
    if (rows.size() > 3) continue;

    Entry entry;
    for (auto row : rows) {
      if (!entry.label.empty()) entry.label += ',';
      entry.label += problem.reaction_names[row];
    }
    EstimateOptions estimate_options;
    estimate_options.pair_budget = full ? 50'000'000 : 3'000'000;
    entry.estimated = estimate_partition_cost<CheckedI64, DynBitset>(
        problem, rows, estimate_options);

    CombinedOptions combined;
    for (auto row : rows)
      combined.partition_reactions.push_back(problem.reaction_names[row]);
    combined.num_ranks = 1;
    Stopwatch watch;
    auto run = solve_combined<CheckedI64, DynBitset>(problem, combined);
    entry.seconds = watch.seconds();
    entry.measured = run.total.total_pairs_probed;
    auto modes = columns_to_bigint(run.columns);
    canonicalize_modes(modes, problem.reversible);
    table.add_row({entry.label,
                   with_commas(static_cast<std::uint64_t>(entry.estimated)),
                   with_commas(entry.measured), seconds_str(entry.seconds),
                   with_commas(modes.size())});
    entries.push_back(std::move(entry));
  }
  std::fputs(table.render("partition sweep (1 rank)").c_str(), stdout);

  // Ranking agreement.
  std::size_t good = 0;
  std::size_t comparisons = 0;
  for (std::size_t a = 0; a < entries.size(); ++a) {
    for (std::size_t b = a + 1; b < entries.size(); ++b) {
      if (entries[a].measured == entries[b].measured) continue;
      ++comparisons;
      if ((entries[a].estimated < entries[b].estimated) ==
          (entries[a].measured < entries[b].measured))
        ++good;
    }
  }
  auto best_est =
      std::min_element(entries.begin(), entries.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.estimated < b.estimated;
                       });
  auto best_real =
      std::min_element(entries.begin(), entries.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.measured < b.measured;
                       });
  std::printf("\nestimator ranking agreement: %zu/%zu pairwise orders\n",
              good, comparisons);
  std::printf("estimator recommends: %s   (true best: %s)\n",
              best_est->label.c_str(), best_real->label.c_str());
  return 0;
}
