#!/usr/bin/env bash
# Apply (default) or verify (--check) clang-format over every tracked C++
# source, using the repo's .clang-format (Google style, 80 columns).
#
# Usage: scripts/format.sh [--check]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not installed" >&2
  exit 1
fi

mapfile -t files < <(find src tools tests examples bench \
    \( -name '*.cpp' -o -name '*.hpp' \) | sort)

if [ "${1:-}" = "--check" ]; then
  clang-format --dry-run --Werror "${files[@]}"
  echo "format OK (${#files[@]} files)"
else
  clang-format -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
