// Final-result postprocessing: canonicalisation and set comparison.
//
// EFMs are rays: any positive multiple is the same mode, and a mode whose
// support touches only reversible reactions is the same mode as its
// negation.  Canonical form therefore is: primitive integer entries, and —
// only for fully-reversible supports — first nonzero entry positive.
// Canonical mode LISTS are sorted and duplicate-free, which makes results
// of different algorithms (serial / combinatorial parallel / combined)
// directly comparable with operator==.
#pragma once

#include <algorithm>
#include <vector>

#include <cmath>

#include "bigint/bigint.hpp"
#include "nullspace/flux_column.hpp"
#include "support/error.hpp"

namespace elmo {

namespace detail {

/// Rescale a double mode (normalised to max-abs 1 by the double kernel) to
/// small integers.  Searches multipliers k/min|v| for k = 1..64; throws
/// InternalError if no integer scaling fits, which signals the double
/// kernel drifted too far for exact reporting.
inline std::vector<std::int64_t> double_mode_to_integers(
    const std::vector<double>& values) {
  double min_abs = 0.0;
  for (double v : values) {
    double a = std::fabs(v);
    if (a > kDoubleZeroTol && (min_abs == 0.0 || a < min_abs)) min_abs = a;
  }
  if (min_abs == 0.0) return std::vector<std::int64_t>(values.size(), 0);
  for (int k = 1; k <= 64; ++k) {
    const double scale = static_cast<double>(k) / min_abs;
    bool ok = true;
    std::vector<std::int64_t> out(values.size(), 0);
    for (std::size_t i = 0; i < values.size() && ok; ++i) {
      double scaled = values[i] * scale;
      double rounded = std::round(scaled);
      if (std::fabs(scaled - rounded) > 1e-6 * std::max(1.0, std::fabs(scaled)))
        ok = false;
      out[i] = static_cast<std::int64_t>(rounded);
    }
    if (ok) return out;
  }
  throw InternalError(
      "double kernel mode has no small integer scaling; use an exact kernel");
}

}  // namespace detail

/// Convert solver columns to BigInt flux vectors (reduced reaction space).
template <typename Scalar, typename Support>
std::vector<std::vector<BigInt>> columns_to_bigint(
    const std::vector<FluxColumn<Scalar, Support>>& columns) {
  std::vector<std::vector<BigInt>> out;
  out.reserve(columns.size());
  for (const auto& column : columns) {
    std::vector<BigInt> mode;
    mode.reserve(column.values.size());
    if constexpr (std::is_same_v<Scalar, double>) {
      // The double kernel normalises by max-abs; recover the primitive
      // integer ray.  Exactness is not guaranteed for the double kernel;
      // it is intended for small networks and the arithmetic ablation.
      for (auto v : detail::double_mode_to_integers(column.values))
        mode.emplace_back(v);
    } else {
      for (const auto& value : column.values) {
        if constexpr (std::is_same_v<Scalar, BigInt>) {
          mode.push_back(value);
        } else {
          mode.push_back(BigInt(value.value()));
        }
      }
    }
    out.push_back(std::move(mode));
  }
  return out;
}

/// Canonicalise one mode in place (see file comment for the convention).
inline void canonicalize_mode(std::vector<BigInt>& mode,
                              const std::vector<bool>& reversible) {
  bool fully_reversible = true;
  for (std::size_t i = 0; i < mode.size() && fully_reversible; ++i) {
    if (!mode[i].is_zero() && !reversible[i]) fully_reversible = false;
  }
  if (!fully_reversible) return;
  for (const auto& value : mode) {
    if (value.is_zero()) continue;
    if (value.sign() < 0) {
      for (auto& v : mode) v = -v;
    }
    return;
  }
}

/// Canonicalise, sort and dedup a mode list in place.
inline void canonicalize_modes(std::vector<std::vector<BigInt>>& modes,
                               const std::vector<bool>& reversible) {
  for (auto& mode : modes) canonicalize_mode(mode, reversible);
  std::sort(modes.begin(), modes.end());
  modes.erase(std::unique(modes.begin(), modes.end()), modes.end());
}

/// Bring an externally supplied mode list (e.g. the paper's Eq (7) matrix)
/// to canonical form for comparison.
inline std::vector<std::vector<BigInt>> canonical_modes_from_i64(
    const std::vector<std::vector<std::int64_t>>& raw,
    const std::vector<bool>& reversible) {
  std::vector<std::vector<BigInt>> modes;
  modes.reserve(raw.size());
  for (const auto& row : raw) {
    std::vector<BigInt> mode;
    mode.reserve(row.size());
    for (auto v : row) mode.emplace_back(v);
    modes.push_back(std::move(mode));
  }
  canonicalize_modes(modes, reversible);
  return modes;
}

}  // namespace elmo
