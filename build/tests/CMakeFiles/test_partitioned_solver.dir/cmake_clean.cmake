file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned_solver.dir/test_partitioned_solver.cpp.o"
  "CMakeFiles/test_partitioned_solver.dir/test_partitioned_solver.cpp.o.d"
  "test_partitioned_solver"
  "test_partitioned_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
