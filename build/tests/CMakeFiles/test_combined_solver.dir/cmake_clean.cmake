file(REMOVE_RECURSE
  "CMakeFiles/test_combined_solver.dir/test_combined_solver.cpp.o"
  "CMakeFiles/test_combined_solver.dir/test_combined_solver.cpp.o.d"
  "test_combined_solver"
  "test_combined_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combined_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
