// Clean counterpart for the error-path/RAII pass.  Balanced acquire /
// release idioms and typed throws that reach a matching catch on a
// caller path.  Must stay silent.  Never compiled — only analyzed.
// Names deliberately do not overlap with errpath_bad.cpp: the call
// graph is project-wide, and shared names would stitch the two files
// together.
#include <string>

namespace fixture_clean {

struct ResourceError {
  explicit ResourceError(const std::string& what);
};
struct DeadlineExceededError {
  explicit DeadlineExceededError(const std::string& what);
};

void begin_span(const char* name);
void end_span();
void open_spill_block(const char* path);
void close_spill_block();

// Balanced directly: one open, one close.
inline void balanced_span() {
  begin_span("merge");
  end_span();
}

// Balanced across one call level: the helper supplies the close.
inline void closing_helper() { close_spill_block(); }
inline void delegated_close() {
  open_spill_block("a.bin");
  closing_helper();
}

// A deliberate acquire-wrapper: opens on behalf of its caller.
// lint:allow(raii-pair)
inline void open_wrapper() { open_spill_block("b.bin"); }

// Typed throw caught two call levels up by an exact-type catch.
inline void budget_throw() {
  throw ResourceError("spill budget exhausted");
}
inline void relay() { budget_throw(); }
inline void retry_ladder() {
  try {
    relay();
  } catch (const ResourceError&) {
  }
}

// Typed throw absorbed by a catch-all shutdown handler in the caller.
inline void deadline() { throw DeadlineExceededError("watchdog fired"); }
inline void shutdown_shepherd() {
  try {
    deadline();
  } catch (...) {
  }
}

}  // namespace fixture_clean
