# Empty compiler generated dependencies file for test_estimate.
# This may be replaced when dependencies are built.
