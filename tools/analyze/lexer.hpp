// elmo_analyze — minimal C++ lexer over stripped source text.
//
// Produces identifiers, numbers and punctuation with line numbers; skips
// whitespace and preprocessor directives (those are handled by line-level
// scans — lexing a #define body would attribute its tokens to phantom
// scopes).  Multi-character operators that matter to the passes (::, <<,
// >>, ->, compound assignments) come out as single tokens.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace elmo_analyze {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based

  [[nodiscard]] bool is(const char* s) const { return text == s; }
  [[nodiscard]] bool ident() const { return kind == Kind::kIdent; }
};

/// Tokenize stripped text (see strip_noncode); never throws.
std::vector<Token> lex(const std::string& stripped);

/// Index of the token matching the opener at `close_idx` (which must be
/// `)`, `]` or `}`), scanning backwards.  Returns npos when unbalanced.
std::size_t match_backward(const std::vector<Token>& toks,
                           std::size_t close_idx);

/// Index of the token matching the opener at `open_idx` (`(`, `[`, `{`),
/// scanning forwards.  Returns npos when unbalanced.
std::size_t match_forward(const std::vector<Token>& toks,
                          std::size_t open_idx);

}  // namespace elmo_analyze
