file(REMOVE_RECURSE
  "libelmo_io.a"
)
