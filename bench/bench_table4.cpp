// Table IV: Algorithm 3 on S. cerevisiae Network II with partition
// {R54r, R90r, R60r} under a per-rank memory budget, including the paper's
// two stories:
//
//   1. Algorithm 2 alone cannot finish: the replicated nullspace matrix
//      outgrows a rank's memory (the paper's run died at iteration 59 of
//      61).  Reproduced here by running Algorithm 2 under the same budget
//      and showing the MemoryBudgetError.
//   2. Two of the eight three-reaction subsets are still too large and get
//      re-split by a fourth reaction (the paper used R22r), after which the
//      whole set completes.  Reproduced by the adaptive re-split.
//
// Paper reference: 49,764,544 EFMs total in 2 h 57 min on 256 Blue Gene/P
// nodes; per-subset rows in Table IV.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace elmo;
  const bool full = bench::full_scale(argc, argv);
  bench::print_scale_banner(
      full, "Table IV: Algorithm 3 on Network II, partition {R54r, R90r, "
            "R60r}, memory-budgeted");

  Network network = bench::network_2(full);
  auto compressed = compress(network);
  const int ranks = full ? 8 : 4;

  // Pick a budget that binds: measure the unsplit peak first (on the demo
  // scale this is quick; on full scale we use a fixed fraction of the
  // paper's 4 GB/node Blue Gene budget scaled to the instance).
  std::size_t unsplit_peak = 0;
  bool unsplit_failed = false;
  std::size_t budget;
  {
    EfmOptions probe_options;
    probe_options.algorithm = Algorithm::kCombinatorialParallel;
    probe_options.num_ranks = ranks;
    if (full) {
      budget = std::size_t{3} << 30;  // 3 GiB per rank
      probe_options.memory_budget_per_rank = budget;
      try {
        auto unsplit =
            compute_efms(compressed, network.reversibility(), probe_options);
        unsplit_peak = unsplit.peak_rank_memory;
      } catch (const MemoryBudgetError& e) {
        unsplit_failed = true;
        std::printf("Algorithm 2 under %s/rank: ABORTED mid-run (%s needed) "
                    "- the paper's iteration-59 failure\n\n",
                    bytes_str(e.budget_bytes).c_str(),
                    bytes_str(e.requested_bytes).c_str());
      }
    } else {
      auto unsplit =
          compute_efms(compressed, network.reversibility(), probe_options);
      unsplit_peak = unsplit.peak_rank_memory;
      // Choose a budget below the unsplit peak — and below the largest
      // subset's needs — so the demo reproduces both the failure and the
      // adaptive re-split narrative at small scale.
      budget = unsplit_peak * 2 / 5;
      probe_options.memory_budget_per_rank = budget;
      try {
        compute_efms(compressed, network.reversibility(), probe_options);
      } catch (const MemoryBudgetError& e) {
        unsplit_failed = true;
        std::printf("Algorithm 2 under %s/rank: ABORTED mid-run (%s needed) "
                    "- the paper's iteration-59 failure\n\n",
                    bytes_str(e.budget_bytes).c_str(),
                    bytes_str(e.requested_bytes).c_str());
      }
    }
  }
  if (!unsplit_failed) {
    std::printf("note: Algorithm 2 fit under the budget at this scale; the "
                "divide-and-conquer rows below still apply\n\n");
  }

  EfmOptions options;
  options.algorithm = Algorithm::kCombined;
  options.num_ranks = ranks;
  if (full) {
    options.partition_reactions = {"R54r", "R90r", "R60r"};
  } else {
    // The demo knockouts couple R60r into an irreversible chain, so the
    // demo auto-selects three trailing reversible reactions instead.
    options.qsub = 3;
  }
  options.memory_budget_per_rank = budget;
  options.max_extra_splits = 2;  // allow the paper's fourth reaction
  Stopwatch watch;
  auto result = compute_efms(compressed, network.reversibility(), options);
  const double seconds = watch.seconds();

  Table table({"id", "binary partition subset", "# candidate modes",
               "# EFM", "time (s)", "re-split"});
  std::size_t id = 0;
  for (const auto& subset : result.subsets) {
    table.add_row({std::to_string(id++), subset.label,
                   with_commas(subset.candidate_pairs),
                   with_commas(subset.num_efms), seconds_str(subset.seconds),
                   subset.extra_splits ? "+" + std::to_string(
                                                   subset.extra_splits) +
                                             " reaction(s)"
                                       : ""});
  }
  std::fputs(
      table.render("Algorithm 3 (measured), budget " + bytes_str(budget) +
                   "/rank")
          .c_str(),
      stdout);
  const std::string unsplit_note =
      unsplit_peak ? " (unsplit peak: " + bytes_str(unsplit_peak) + ")" : "";
  std::printf("\nTotal # EFM: %s    total time: %s s    peak rank memory: "
              "%s%s\n",
              with_commas(result.num_modes()).c_str(),
              seconds_str(seconds).c_str(),
              bytes_str(result.peak_rank_memory).c_str(),
              unsplit_note.c_str());
  std::printf("\npaper: 49,764,544 EFMs; subsets 1 and 3 re-split by R22r; "
              "2h57m23s on 256 Blue Gene/P nodes\n");
  return 0;
}
